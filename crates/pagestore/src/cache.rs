//! Buffer pool over the simulated disk: a sharded mapping table with
//! per-frame latches, scan-resistant cold/hot eviction, and miss
//! classification.
//!
//! The pool is deliberately small by default (32 KiB — the paper's §5
//! setting: "we set up the database cache to the minimum (32K)"), so that
//! query evaluation is I/O-bound and the miss counters approximate the true
//! disk page accesses an index incurs.
//!
//! ## Concurrency
//!
//! The pool is internally synchronised (every method takes `&self`), with
//! two tiers so a read-mostly workload scales with cores:
//!
//! * **Hit path — no global lock.** The `(file, page) → frame` mapping is
//!   split across [`SHARD_COUNT`] shards, each behind its own `RwLock`. A
//!   cache hit takes one shard *read* latch, increments the frame's atomic
//!   pin count ([`FrameSlot`]'s per-frame latch) and records the touch in
//!   the shard's touch log; concurrent readers — even of the same page —
//!   never contend on a pool-wide lock. Guard drops are a single atomic
//!   decrement with no lock at all.
//! * **Miss path — one policy lock.** Misses, eviction, allocation, writes
//!   and statistics share the `policy` mutex guarding the disk, the
//!   cold/hot eviction lists and the miss counters. Eviction latches only
//!   its victim: it re-checks the victim's pin count under that frame's
//!   shard *write* latch, so a frame observed unpinned there can have no
//!   reader about to materialise a view (readers pin under the read
//!   latch).
//!
//! Lock order is `policy → shard map → shard touch log`; the hit path
//! takes shard latches only and never waits on the policy lock while
//! holding one, so the hierarchy is cycle-free.
//!
//! ## Eviction policy
//!
//! Eviction prefers *cold* frames (touched only once since load) over *hot*
//! ones, oldest first, so a long sequential scan cannot flush hot pages such
//! as B-tree roots — the scan-resistant "midpoint" policy real database
//! caches (incl. Berkeley DB's priority buffers) use. When every frame is
//! hot, the whole pool ages back to cold (epoch reset) so stale hot pages
//! cannot monopolise the cache.
//!
//! The policy is realised as two intrusive lists (cold, FIFO by load order;
//! hot, LRU by last touch) and is **observationally identical** to the
//! pre-sharding single-mutex pool: hits assign a globally ordered sequence
//! number and park in per-shard touch logs, and the logs are drained — in
//! sequence order — before any operation that consults the lists (eviction,
//! `clear_cache`, policy-locked fetches). Under single-threaded replay the
//! drained log replays exactly the eager LRU updates of the old code, so
//! victim choice, and hence the paper's page-access counts, are bit-for-bit
//! unchanged (the CI golden-file gate and
//! `eviction_matches_historical_min_scan_policy` both pin this down).
//!
//! ## Pinned frames
//!
//! [`BufferPool::pin`] increments a frame's pin count; pinned frames are
//! exempt from eviction and from [`BufferPool::clear_cache`], and writing to
//! a pinned page panics. Frame buffers live in stable heap allocations
//! (shared `Arc<FrameSlot>`s) that are never moved, recycled or freed while
//! pinned, which is what lets [`PageGuard`](crate::PageGuard) hand out
//! `&[u8]` page bytes without copying — from any thread — while the pool
//! keeps serving other pages. If every frame is pinned, the pool grows past
//! its capacity rather than deadlocking (the overflow drains again as pins
//! are released and frames are evicted).

use crate::cost::IoCostModel;
use crate::disk::{FileId, PageId, PAGE_SIZE};
use crate::error::{Clock, PageError, RealClock, RetryPolicy, ScrubFinding, ScrubReport};
use crate::frame::{FrameSlot, PinnedSlot};
use crate::stats::IoStats;
use crate::storage::{Storage, StorageError};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::ptr::NonNull;
use std::sync::Arc;

/// Sentinel for "no frame" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Number of mapping-table shards. Page-to-shard assignment is a fixed
/// multiplicative hash, so it is deterministic across runs.
const SHARD_COUNT: usize = 16;

/// Bound on eviction re-tries when racing pinners keep invalidating the
/// chosen victim; past it the pool grows past capacity instead (safe, and
/// unreachable single-threaded).
const EVICT_RETRY_LIMIT: usize = 1024;

/// When a shard's touch log reaches this many parked hits, the hitting
/// thread folds the logs into the LRU lists itself (taking the policy
/// lock once) instead of waiting for the next miss — a hit-only workload
/// over a fully cached working set would otherwise grow the logs without
/// bound. Amortised over this many hits, the extra lock is noise.
const TOUCH_LOG_DRAIN_THRESHOLD: usize = 1024;

/// One mapping shard: a slice of the `(file, page) → frame` table plus the
/// shard's touch log (globally sequenced cache hits awaiting LRU replay).
struct Shard {
    map: RwLock<HashMap<(FileId, PageId), Arc<FrameSlot>>>,
    touches: Mutex<Vec<Touch>>,
}

/// One parked cache hit: `(global sequence, physical page, slot recycle
/// version at hit time)`. The version lets the drain skip touches whose
/// frame was evicted and whose physical page was re-installed into a
/// fresh frame in the meantime (concurrency only — single-threaded,
/// drains always run before any eviction can intervene).
type Touch = (u64, u64, u64);

/// Eviction bookkeeping for one cached frame (policy-lock side).
struct PolicyEntry {
    phys: u64,
    key: (FileId, PageId),
    slot: Arc<FrameSlot>,
    dirty: bool,
    /// Touched more than once since load; hot frames live in the hot list.
    hot: bool,
    /// Intrusive cold/hot list links (entry indices).
    prev: u32,
    next: u32,
}

/// Head/tail of one intrusive frame list.
#[derive(Clone, Copy)]
struct FrameList {
    head: u32,
    tail: u32,
}

impl FrameList {
    const EMPTY: FrameList = FrameList {
        head: NIL,
        tail: NIL,
    };
}

/// Everything guarded by the single policy lock: the disk, the eviction
/// lists and the miss-side statistics.
struct PolicyCore {
    disk: Box<dyn Storage>,
    capacity: usize,
    /// Entry slots; indices are stable (freed slots are reused, never
    /// compacted) so list links and the `map` stay valid.
    entries: Vec<Option<PolicyEntry>>,
    /// Free entry indices.
    free_entries: Vec<u32>,
    /// Recycled frame slots (page buffer allocations kept for reuse).
    free_slots: Vec<Arc<FrameSlot>>,
    /// phys page -> entry index of the cached frame.
    map: HashMap<u64, u32>,
    cold: FrameList,
    hot: FrameList,
    /// Physical page of the most recent *disk fetch* (not cache hit), used to
    /// classify the next miss as sequential or random.
    last_fetched: Option<u64>,
    /// Miss-side statistics; `hits` lives in an atomic on the pool and is
    /// merged into snapshots.
    stats: IoStats,
    cost: IoCostModel,
    /// Scratch for draining touch logs (allocation reused).
    touch_scratch: Vec<Touch>,
    /// Bounded retry policy for transient page-fault read errors.
    retry: RetryPolicy,
    /// Time source for retry backoff (tests inject a recording clock).
    clock: Arc<dyn Clock>,
    /// Pages that failed an integrity check: `phys → (file, page)`.
    /// Every later fault on one fails fast with [`PageError::Corrupt`]
    /// instead of re-reading rot. A `BTreeMap` so scrub reports list them
    /// in deterministic physical order.
    quarantine: BTreeMap<u64, (FileId, PageId)>,
    /// `Some(cause)` once a write-back has failed: the pool is in degraded
    /// read-only mode — reads keep serving, mutations return
    /// [`PageError::ReadOnly`] carrying this cause.
    read_only: Option<Arc<str>>,
}

impl PolicyCore {
    fn entry(&self, idx: u32) -> &PolicyEntry {
        self.entries[idx as usize].as_ref().expect("live entry")
    }

    fn entry_mut(&mut self, idx: u32) -> &mut PolicyEntry {
        self.entries[idx as usize].as_mut().expect("live entry")
    }

    fn list(&mut self, hot: bool) -> &mut FrameList {
        if hot {
            &mut self.hot
        } else {
            &mut self.cold
        }
    }

    fn push_tail(&mut self, hot: bool, idx: u32) {
        let tail = self.list(hot).tail;
        {
            let e = self.entry_mut(idx);
            e.prev = tail;
            e.next = NIL;
        }
        if tail != NIL {
            self.entry_mut(tail).next = idx;
        }
        let list = self.list(hot);
        if list.head == NIL {
            list.head = idx;
        }
        list.tail = idx;
    }

    fn unlink(&mut self, hot: bool, idx: u32) {
        let (prev, next) = {
            let e = self.entry_mut(idx);
            let links = (e.prev, e.next);
            e.prev = NIL;
            e.next = NIL;
            links
        };
        if prev != NIL {
            self.entry_mut(prev).next = next;
        }
        if next != NIL {
            self.entry_mut(next).prev = prev;
        }
        let list = self.list(hot);
        if list.head == idx {
            list.head = next;
        }
        if list.tail == idx {
            list.tail = prev;
        }
    }

    /// Mark a frame hot when it is touched again after its load, moving it
    /// to the back of the hot LRU list.
    fn touch(&mut self, idx: u32) {
        let hot = self.entry(idx).hot;
        self.unlink(hot, idx);
        self.entry_mut(idx).hot = true;
        self.push_tail(true, idx);
    }

    /// Oldest cold frame with no outstanding pins, if any. In degraded
    /// read-only mode dirty frames are also skipped: they can never be
    /// written back, so evicting them would lose committed data — the
    /// pool evicts clean frames or grows instead.
    fn first_unpinned_cold(&self) -> Option<u32> {
        let degraded = self.read_only.is_some();
        let mut idx = self.cold.head;
        while idx != NIL {
            let e = self.entry(idx);
            if e.slot.pin_count() == 0 && !(degraded && e.dirty) {
                return Some(idx);
            }
            idx = e.next;
        }
        None
    }

    /// Epoch reset: age the whole hot list back to cold, preserving LRU
    /// order, so stale hot pages cannot pin the cache forever. Returns
    /// false when the hot list was empty.
    fn splice_hot_into_cold(&mut self) -> bool {
        if self.hot.head == NIL {
            return false;
        }
        let mut idx = self.hot.head;
        while idx != NIL {
            let e = self.entry_mut(idx);
            e.hot = false;
            idx = e.next;
        }
        // Splice the (LRU-ordered) hot list onto the cold tail.
        if self.cold.head == NIL {
            self.cold = self.hot;
        } else {
            let cold_tail = self.cold.tail;
            let hot_head = self.hot.head;
            self.entry_mut(cold_tail).next = hot_head;
            self.entry_mut(hot_head).prev = cold_tail;
            self.cold.tail = self.hot.tail;
        }
        self.hot = FrameList::EMPTY;
        true
    }
}

/// A page cache with a sharded mapping table, per-frame pin latches,
/// scan-resistant eviction, miss classification and cost accounting.
///
/// Most callers use the [`Pager`](crate::Pager) wrapper; the pool itself is
/// exposed for tests and custom configurations. The pool is internally
/// synchronised — all methods take `&self` and may be called from any
/// thread (see the module docs for the locking design).
pub struct BufferPool {
    shards: Box<[Shard]>,
    /// Global touch sequence: orders cache hits across shards so deferred
    /// LRU replay is deterministic.
    seq: AtomicU64,
    /// Cache hits (the lock-free side of [`IoStats`]).
    hits: AtomicU64,
    policy: Mutex<PolicyCore>,
    /// Group-commit coordination for [`BufferPool::group_sync`]. Lives
    /// outside the policy lock: the leader holds no queue lock while
    /// flushing, and waiters never touch the policy lock at all.
    commit_queue: crate::commit::CommitQueue,
    /// Mutation hook for the model-checker teeth test: when set, the
    /// evictor skips its pin re-check under the shard write latch —
    /// reintroducing the exact race the protocol exists to prevent — so
    /// `tests/model.rs` can assert the checker finds a failing schedule.
    /// A plain std atomic on purpose: flipping it is test setup, not a
    /// modeled step. Never compiled into production builds.
    #[cfg(feature = "model")]
    model_break_evictor_pin_recheck: std::sync::atomic::AtomicBool,
    /// Opt-in for the concurrent write path (optimistic lock coupling):
    /// when set, flushes read frames through seqlock-validated snapshots
    /// (skipping frames a latched writer currently holds) instead of raw
    /// borrows. Off by default so the single-writer page-access counts —
    /// the paper's golden gates — stay bit-for-bit. A plain std atomic:
    /// it is configuration flipped before threads race, not a protocol
    /// step the model checker needs to reorder.
    concurrent_writes: std::sync::atomic::AtomicBool,
    /// Mutation hook for the OLC model's teeth test: when set, versioned
    /// pages report every snapshot as valid — readers stop noticing
    /// concurrent latched writers, the exact bug the seqlock exists to
    /// prevent — so `tests/model.rs` can assert the checker finds the
    /// torn-read schedule deterministically. Never compiled into
    /// production builds.
    #[cfg(feature = "model")]
    model_break_olc_version_check: std::sync::atomic::AtomicBool,
}

impl BufferPool {
    /// Create a pool caching at most `cache_bytes / PAGE_SIZE` pages
    /// (minimum 1) over any [`Storage`] backend (the in-memory
    /// [`Disk`](crate::Disk) or a durable
    /// [`FileStorage`](crate::FileStorage)).
    pub fn new(storage: impl Storage + 'static, cache_bytes: usize, cost: IoCostModel) -> Self {
        let capacity = (cache_bytes / PAGE_SIZE).max(1);
        let shards = (0..SHARD_COUNT)
            .map(|_| Shard {
                map: RwLock::new(HashMap::new()),
                touches: Mutex::new(Vec::new()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufferPool {
            shards,
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            policy: Mutex::new(PolicyCore {
                disk: Box::new(storage),
                capacity,
                entries: Vec::new(),
                free_entries: Vec::new(),
                free_slots: Vec::new(),
                map: HashMap::new(),
                cold: FrameList::EMPTY,
                hot: FrameList::EMPTY,
                last_fetched: None,
                stats: IoStats::default(),
                cost,
                touch_scratch: Vec::new(),
                retry: RetryPolicy::default(),
                clock: Arc::new(RealClock),
                quarantine: BTreeMap::new(),
                read_only: None,
            }),
            commit_queue: crate::commit::CommitQueue::new(),
            #[cfg(feature = "model")]
            model_break_evictor_pin_recheck: std::sync::atomic::AtomicBool::new(false),
            concurrent_writes: std::sync::atomic::AtomicBool::new(false),
            #[cfg(feature = "model")]
            model_break_olc_version_check: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Opt this pool in to (or out of) the concurrent write path. With it
    /// on, latched page writes ([`BufferPool::try_with_page_mut`]) may run
    /// while readers hold pins, and flushes snapshot frames through the
    /// content seqlock. Flip it before concurrent writers start; the
    /// default (off) keeps the historical single-writer behaviour and page
    /// accounting bit-for-bit.
    pub fn set_concurrent_writes(&self, on: bool) {
        self.concurrent_writes
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the concurrent write path is enabled.
    pub fn concurrent_writes(&self) -> bool {
        self.concurrent_writes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Disable optimistic version validation (model builds only; see the
    /// field doc). The checker must then find the torn-snapshot schedule —
    /// the mutation test proving the OLC model has teeth.
    #[cfg(feature = "model")]
    pub fn model_break_olc_version_check(&self) {
        self.model_break_olc_version_check
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether optimistic snapshots actually validate (always, outside
    /// model builds).
    #[inline]
    pub(crate) fn olc_version_check_enabled(&self) -> bool {
        #[cfg(feature = "model")]
        {
            !self
                .model_break_olc_version_check
                .load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(feature = "model"))]
        {
            true
        }
    }

    /// Disable the evictor's pin re-check (model builds only; see the
    /// field doc). The checker must then find the pinned-reader-vs-evictor
    /// race deterministically — the mutation test that proves the model
    /// suite has teeth.
    #[cfg(feature = "model")]
    pub fn model_break_evictor_pin_recheck(&self) {
        self.model_break_evictor_pin_recheck
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the evictor's pin re-check is active (always, outside model
    /// builds).
    #[inline]
    fn evictor_pin_recheck_enabled(&self) -> bool {
        #[cfg(feature = "model")]
        {
            !self
                .model_break_evictor_pin_recheck
                .load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(feature = "model"))]
        {
            true
        }
    }

    /// Number of page frames the pool may hold (pins may transiently push it
    /// above this).
    pub fn capacity(&self) -> usize {
        self.policy.lock().capacity
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.policy.lock().map.len()
    }

    /// Create a new logical file (segment) on the underlying disk.
    pub fn create_file(&self) -> FileId {
        self.policy.lock().disk.create_file()
    }

    /// Number of pages currently allocated to `file`.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.policy.lock().disk.file_len(file)
    }

    /// Number of files on the underlying disk.
    pub fn file_count(&self) -> usize {
        self.policy.lock().disk.file_count()
    }

    /// Total pages allocated on the underlying disk across all files.
    pub fn total_pages(&self) -> u64 {
        self.policy.lock().disk.total_pages()
    }

    /// Snapshot the I/O statistics.
    pub fn stats(&self) -> IoStats {
        let core = self.policy.lock();
        let mut s = core.stats.clone();
        s.hits = self.hits.load(Ordering::SeqCst);
        s
    }

    pub fn reset_stats(&self) {
        let mut core = self.policy.lock();
        core.stats = IoStats::default();
        core.last_fetched = None;
        self.hits.store(0, Ordering::SeqCst);
    }

    pub fn set_cost_model(&self, cost: IoCostModel) {
        self.policy.lock().cost = cost;
    }

    /// Configure how transient page-fault read errors are retried.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.policy.lock().retry = policy;
    }

    /// The current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy.lock().retry
    }

    /// Inject the time source used for retry backoff (tests pass a
    /// recording clock so no wall-clock time is spent).
    pub fn set_retry_clock(&self, clock: Arc<dyn Clock>) {
        self.policy.lock().clock = clock;
    }

    /// `Some(cause)` when the pool is in degraded read-only mode after a
    /// failed write-back: reads keep serving, mutations return
    /// [`PageError::ReadOnly`].
    pub fn degraded(&self) -> Option<Arc<str>> {
        self.policy.lock().read_only.clone()
    }

    /// Forget every quarantined page (e.g. after restoring the file from
    /// a backup); returns how many were forgotten. The next access
    /// re-reads and re-verifies each page from disk.
    pub fn clear_quarantine(&self) -> usize {
        let mut core = self.policy.lock();
        let n = core.quarantine.len();
        core.quarantine.clear();
        n
    }

    /// Walk every allocated page of every file, verify it is readable and
    /// integral, and report what is not — the operator-facing half of
    /// graceful degradation.
    ///
    /// Reads go straight to the storage backend (transient errors retried
    /// under the pool's [`RetryPolicy`]), bypassing the cache entirely: no
    /// frame is evicted or installed and the miss counters do not move, so
    /// a scrub can run against a live pool without perturbing the paper's
    /// page-access accounting. Pages found corrupt are quarantined. Note
    /// that dirty cached pages are verified against their last *committed*
    /// on-disk image — the in-cache bytes are newer but not yet on the
    /// medium.
    pub fn scrub(&self) -> ScrubReport {
        let mut core = self.policy.lock();
        let core = &mut *core;
        let mut report = ScrubReport::default();
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        let policy = core.retry;
        let clock = core.clock.clone();
        for f in 0..core.disk.file_count() {
            let file = FileId(f as u32);
            for page in 0..core.disk.file_len(file) {
                let phys = core.disk.phys(file, page);
                report.pages_checked += 1;
                let mut attempt: u32 = 1;
                let outcome = loop {
                    match core.disk.read_phys(phys, &mut buf) {
                        Ok(()) => break Ok(()),
                        Err(e) if e.is_transient() && attempt < policy.attempts.max(1) => {
                            clock.sleep(policy.backoff_before(attempt));
                            core.stats.retries += 1;
                            attempt += 1;
                        }
                        Err(e) => break Err(e),
                    }
                };
                match outcome {
                    Ok(()) => {}
                    Err(e) if e.is_corruption() => {
                        core.quarantine.insert(phys, (file, page));
                        report.corrupt.push(ScrubFinding {
                            file,
                            page,
                            phys,
                            cause: e.to_string(),
                        });
                    }
                    Err(e) => report.unreadable.push(ScrubFinding {
                        file,
                        page,
                        phys,
                        cause: e.to_string(),
                    }),
                }
            }
        }
        for (&phys, &(file, page)) in core.quarantine.iter() {
            report.quarantined.push((file, page, phys));
        }
        report
    }

    /// Store `bytes` under `key` in the backend's catalog (index non-paged
    /// state). Durable only after the next [`BufferPool::sync`].
    pub fn put_catalog(&self, key: &str, bytes: &[u8]) {
        self.policy.lock().disk.put_catalog(key, bytes);
    }

    /// Fetch the catalog entry under `key`.
    pub fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
        self.policy.lock().disk.get_catalog(key)
    }

    /// All catalog keys, sorted.
    pub fn catalog_keys(&self) -> Vec<String> {
        self.policy.lock().disk.catalog_keys()
    }

    /// Flush every dirty frame to the backend (charging write costs,
    /// keeping the frames cached) and ask the backend to make all state —
    /// pages, file table, catalog — durable.
    ///
    /// Pinned dirty frames are flushed too: the policy lock excludes every
    /// writer (`write_page`, recycling), so reading their buffers here is
    /// safe, and their pins only protect the bytes from *changing*, which a
    /// write-back does not do. With the concurrent write path enabled,
    /// frames held by an *active* latched writer are skipped (they stay
    /// dirty for the next flush) — quiesce writers before `sync` when the
    /// barrier must cover every in-flight mutation.
    pub fn sync(&self) -> Result<(), StorageError> {
        let mut core = self.policy.lock();
        // A degraded pool refuses the barrier outright: a prior write-back
        // already failed, so pretending the dirty set reached the medium
        // would be a lie. (`try_sync` surfaces this as a typed error.)
        if let Some(cause) = &core.read_only {
            return Err(StorageError::Io(std::io::Error::other(format!(
                "buffer pool is in degraded read-only mode: {cause}"
            ))));
        }
        // Flush the dirty set in ascending physical-page order. The map is
        // a HashMap, so iterating it directly would issue the writes in a
        // per-run-random order — a large sync then degenerates into random
        // I/O. Sorted by physical page, consecutive dirty pages of one
        // structure become consecutive `pwrite`s (and, under the shadow
        // backend, claim ascending free slots), which is also what makes
        // the sync bench's bytes/wall numbers reproducible.
        let mut dirty: Vec<(u64, u32)> = core
            .map
            .iter()
            .filter(|&(_, &idx)| core.entry(idx).dirty)
            .map(|(&phys, &idx)| (phys, idx))
            .collect();
        dirty.sort_unstable_by_key(|&(phys, _)| phys);
        let concurrent = self.concurrent_writes();
        let mut scratch: Option<Box<[u8; PAGE_SIZE]>> = None;
        for (phys, idx) in dirty {
            let slot = core.entry(idx).slot.clone();
            let write_res = if concurrent {
                // Concurrent write path: a latched writer may be mutating
                // the buffer right now, so flush a seqlock-validated
                // snapshot. A frame whose writer stays active through the
                // bounded attempts is *skipped* (it keeps its dirty flag
                // and reaches the medium on the next flush) — never waited
                // on, since that writer may itself be waiting for the
                // policy lock we hold.
                let buf = scratch.get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
                let mut consistent = false;
                for _ in 0..crate::frame::OPTIMISTIC_SNAPSHOT_RETRIES {
                    if slot.try_snapshot_into(buf).is_some() {
                        consistent = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                if !consistent {
                    continue;
                }
                core.disk.write_phys(phys, &buf[..])
            } else {
                // SAFETY: the policy lock is held and (single-writer mode)
                // every mutation path takes it, so the buffer cannot be
                // mutated or recycled while we read it.
                core.disk.write_phys(phys, unsafe { slot.bytes() })
            };
            if let Err(e) = write_res {
                // The frame keeps its dirty flag — nothing was lost — but
                // the pool flips to degraded read-only mode: the medium is
                // refusing writes, so further mutations would only pile up
                // unfsyncable state.
                core.read_only = Some(Arc::from(e.to_string().as_str()));
                return Err(e);
            }
            core.entry_mut(idx).dirty = false;
            let write_cost = core.cost.write;
            core.stats.writes += 1;
            core.stats.synced_pages += 1;
            core.stats.synced_bytes += PAGE_SIZE as u64;
            core.stats.io_time += write_cost;
        }
        if let Err(e) = core.disk.sync() {
            core.read_only = Some(Arc::from(e.to_string().as_str()));
            return Err(e);
        }
        // One durability barrier issued (internally the shadow backend
        // flushes the device twice around the superblock flip; counted
        // once per logical barrier — see the `IoStats::fsyncs` docs).
        core.stats.fsyncs += 1;
        Ok(())
    }

    /// Fallible twin of [`BufferPool::sync`], surfacing the failure as a
    /// typed [`PageError::ReadOnly`] (any sync failure leaves the pool
    /// degraded, so the read-only cause is the right shape).
    pub fn try_sync(&self) -> Result<(), PageError> {
        self.sync().map_err(|e| {
            let cause = self
                .policy
                .lock()
                .read_only
                .clone()
                .unwrap_or_else(|| Arc::from(e.to_string().as_str()));
            PageError::ReadOnly { cause }
        })
    }

    /// Group-committing twin of [`BufferPool::sync`]: concurrent callers
    /// coalesce onto one flush via the pool's [`CommitQueue`]
    /// (see [`crate::commit`]); each returns once a flush covering its
    /// ticket has committed, with the durable storage epoch. A flush
    /// failure degrades the pool (like `sync`) and surfaces to every
    /// covered caller as [`PageError::ReadOnly`].
    pub fn group_sync(&self) -> Result<u64, PageError> {
        self.commit_queue
            .commit(|| match self.sync() {
                Ok(()) => Ok(self.policy.lock().disk.epoch()),
                Err(e) => Err(self
                    .policy
                    .lock()
                    .read_only
                    .clone()
                    .unwrap_or_else(|| Arc::from(e.to_string().as_str()))),
            })
            .map_err(|cause| PageError::ReadOnly { cause })
    }

    /// Group-commit counters (flush amortisation, waiter high-water).
    pub fn commit_queue_stats(&self) -> crate::commit::CommitQueueStats {
        self.commit_queue.stats()
    }

    /// Flush up to `max_pages` dirty frames (ascending physical order,
    /// like `sync`) **without** a commit flip — the background
    /// checkpointer's work unit. The flushed pages land in fresh shadow
    /// slots and become durable at the next `sync`/`group_sync`; until
    /// then recovery still sees the previous epoch, so a crash mid-slice
    /// loses nothing. Returns how many frames were flushed (0 = pool
    /// clean). A write failure degrades the pool exactly like `sync`.
    pub fn checkpoint_slice(&self, max_pages: usize) -> Result<u64, PageError> {
        let mut core = self.policy.lock();
        if let Some(cause) = &core.read_only {
            return Err(PageError::ReadOnly {
                cause: cause.clone(),
            });
        }
        let mut dirty: Vec<(u64, u32)> = core
            .map
            .iter()
            .filter(|&(_, &idx)| core.entry(idx).dirty)
            .map(|(&phys, &idx)| (phys, idx))
            .collect();
        dirty.sort_unstable_by_key(|&(phys, _)| phys);
        dirty.truncate(max_pages);
        let concurrent = self.concurrent_writes();
        let mut scratch: Option<Box<[u8; PAGE_SIZE]>> = None;
        let mut flushed = 0u64;
        for &(phys, idx) in &dirty {
            let slot = core.entry(idx).slot.clone();
            let write_res = if concurrent {
                // Same skip-don't-wait discipline as `sync`: a frame held
                // by an active latched writer stays dirty for a later
                // slice rather than deadlocking against a writer that
                // needs the policy lock we hold.
                let buf = scratch.get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
                let mut consistent = false;
                for _ in 0..crate::frame::OPTIMISTIC_SNAPSHOT_RETRIES {
                    if slot.try_snapshot_into(buf).is_some() {
                        consistent = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                if !consistent {
                    continue;
                }
                core.disk.write_phys(phys, &buf[..])
            } else {
                // SAFETY: the policy lock is held and (single-writer mode)
                // every mutation path takes it, so the buffer cannot be
                // mutated or recycled while we read it.
                core.disk.write_phys(phys, unsafe { slot.bytes() })
            };
            if let Err(e) = write_res {
                // The frame keeps its dirty flag; the pool degrades just
                // like a failed `sync` write-back would.
                let cause: Arc<str> = Arc::from(e.to_string().as_str());
                core.read_only = Some(cause.clone());
                return Err(PageError::ReadOnly { cause });
            }
            core.entry_mut(idx).dirty = false;
            let write_cost = core.cost.write;
            core.stats.writes += 1;
            core.stats.checkpoint_pages += 1;
            core.stats.io_time += write_cost;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Fold write-ahead-log activity (see [`Wal`](crate::Wal)) into this
    /// pool's [`IoStats`], so one snapshot observes the whole commit
    /// pipeline.
    pub fn note_wal(&self, appends: u64, bytes: u64, fsyncs: u64) {
        let mut core = self.policy.lock();
        core.stats.wal_appends += appends;
        core.stats.wal_bytes += bytes;
        core.stats.fsyncs += fsyncs;
    }

    /// Commit epoch of the backend's last durable sync (0 for backends
    /// without a commit protocol, e.g. the memory disk).
    pub fn durable_epoch(&self) -> u64 {
        self.policy.lock().disk.epoch()
    }

    /// Leave degraded read-only mode after the medium healed: clears the
    /// sticky cause (and any sticky group-commit failure) so mutations
    /// and syncs are admitted again. Returns whether the pool *was*
    /// degraded. Dirty frames that were stranded stay dirty and flush on
    /// the next sync; callers should verify the medium first
    /// ([`BufferPool::scrub`]) — if it is still broken, the next
    /// write-back simply re-degrades the pool.
    pub fn clear_degraded(&self) -> bool {
        let was = self.policy.lock().read_only.take().is_some();
        self.commit_queue.reset_failure();
        was
    }

    fn shard_of(&self, key: (FileId, PageId)) -> &Shard {
        // Fixed multiplicative hash — deterministic shard choice.
        let h = (key.0 .0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        &self.shards[(h >> 56) as usize % SHARD_COUNT]
    }

    /// Fast-path lookup (no pool-wide lock): one shard read latch, an
    /// atomic pin, and a touch-log append. Returns `None` on a cache miss.
    fn lookup_fast(&self, key: (FileId, PageId)) -> Option<PinnedSlot> {
        let shard = self.shard_of(key);
        let (slot, version) = {
            let map = shard.map.read();
            let slot = map.get(&key)?;
            // Pin under the shard read latch: eviction re-checks pins under
            // the shard *write* latch, so this pin is ordered before any
            // recycle decision.
            slot.pin();
            (slot.clone(), slot.version())
        };
        self.hits.fetch_add(1, Ordering::SeqCst);
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let pending = {
            let mut touches = shard.touches.lock();
            touches.push((seq, slot.phys(), version));
            touches.len()
        };
        // A hit-only workload (fully cached working set) never reaches a
        // policy-locked drain point, so the logs must be folded in
        // opportunistically or they grow without bound. Draining early is
        // observationally identical: the same touches are applied in the
        // same seq order, just sooner — the lists agree at every
        // subsequent eviction decision.
        if pending >= TOUCH_LOG_DRAIN_THRESHOLD {
            let mut core = self.policy.lock();
            self.drain_touches(&mut core);
        }
        debug_assert_eq!(
            slot.version(),
            version,
            "a pinned slot must never be recycled"
        );
        Some(PinnedSlot::adopt(slot))
    }

    /// Replay parked cache-hit touches into the LRU lists, in global
    /// sequence order. Called before anything consults or mutates the
    /// lists, which under single-threaded replay makes the deferred
    /// updates indistinguishable from the historical eager ones.
    fn drain_touches(&self, core: &mut PolicyCore) {
        let mut scratch = std::mem::take(&mut core.touch_scratch);
        scratch.clear();
        for shard in self.shards.iter() {
            scratch.append(&mut shard.touches.lock());
        }
        scratch.sort_unstable_by_key(|&(seq, _, _)| seq);
        for &(_, phys, version) in &scratch {
            // A touch may outlive its frame only under concurrency: the
            // frame was evicted between the hit and this drain (phys no
            // longer mapped), or evicted *and* its page re-installed into
            // a fresh frame (version mismatch). Skip both — the touched
            // incarnation is gone.
            if let Some(&idx) = core.map.get(&phys) {
                if core.entry(idx).slot.version() == version {
                    core.touch(idx);
                }
            }
        }
        core.touch_scratch = scratch;
    }

    /// Policy-locked fetch: ensure the page is cached and return its entry
    /// index. Counts a hit (touching immediately — the logs are already
    /// drained) or a classified, charged miss. The caller must have
    /// drained the touch logs.
    ///
    /// Fault behaviour: quarantined pages fail fast *before* the miss is
    /// classified or charged (a fault-free rerun sees identical counters);
    /// a failed load leaves the already-charged miss in the stats — under
    /// faults the counters describe attempted I/O, which is what the cost
    /// model simulates.
    fn try_fetch_locked(
        &self,
        core: &mut PolicyCore,
        file: FileId,
        page: PageId,
    ) -> Result<u32, PageError> {
        let phys = core.disk.phys(file, page);
        if let Some(&idx) = core.map.get(&phys) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            core.touch(idx);
            return Ok(idx);
        }
        if let Some(&(qf, qp)) = core.quarantine.get(&phys) {
            return Err(PageError::Corrupt {
                file: qf,
                page: qp,
                phys,
                cause: "page is quarantined after an earlier integrity failure".into(),
            });
        }
        // Miss: classify, charge, load.
        let sequential = core.last_fetched == Some(phys.wrapping_sub(1));
        if sequential {
            core.stats.seq_misses += 1;
            core.stats.io_time += core.cost.seq_read;
        } else {
            core.stats.random_misses += 1;
            core.stats.io_time += core.cost.random_read;
        }
        core.last_fetched = Some(phys);
        self.try_install(core, (file, page), phys, false)
    }

    /// Pin the page into the cache and return the pinned slot. The fast
    /// path is latch-only; misses fall back to the policy lock.
    fn try_acquire(&self, file: FileId, page: PageId) -> Result<PinnedSlot, PageError> {
        let key = (file, page);
        if let Some(pinned) = self.lookup_fast(key) {
            return Ok(pinned);
        }
        let mut core = self.policy.lock();
        self.drain_touches(&mut core);
        // `try_fetch_locked` re-checks the mapping, so a page another
        // thread installed between our fast-path miss and the lock
        // acquisition is correctly counted as a hit.
        let idx = self.try_fetch_locked(&mut core, file, page)?;
        let slot = core.entry(idx).slot.clone();
        // Pin under the policy lock: eviction also runs under it, so the
        // frame cannot be recycled before the pin lands.
        slot.pin();
        Ok(PinnedSlot::adopt(slot))
    }

    fn acquire(&self, file: FileId, page: PageId) -> PinnedSlot {
        self.try_acquire(file, page)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Append a zeroed page to `file` and install it in the cache as dirty
    /// (it still needs a write-back, which is charged when evicted or
    /// flushed). Refused with [`PageError::ReadOnly`] when the pool is
    /// degraded.
    pub fn try_allocate_page(&self, file: FileId) -> Result<PageId, PageError> {
        let mut core = self.policy.lock();
        if let Some(cause) = &core.read_only {
            return Err(PageError::ReadOnly {
                cause: cause.clone(),
            });
        }
        self.drain_touches(&mut core);
        let page = core.disk.allocate_page(file);
        let phys = core.disk.phys(file, page);
        // A zeroed install never reads the disk, so it cannot fail; `?`
        // keeps the types honest if that ever changes.
        self.try_install(&mut core, (file, page), phys, true)?;
        Ok(page)
    }

    /// Panicking wrapper around [`BufferPool::try_allocate_page`].
    pub fn allocate_page(&self, file: FileId) -> PageId {
        self.try_allocate_page(file)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a whole page into `buf`.
    pub fn read_page(&self, file: FileId, page: PageId, buf: &mut [u8]) {
        self.with_page(file, page, |data| buf.copy_from_slice(data))
    }

    /// Fallible twin of [`BufferPool::read_page`].
    pub fn try_read_page(
        &self,
        file: FileId,
        page: PageId,
        buf: &mut [u8],
    ) -> Result<(), PageError> {
        self.try_with_page(file, page, |data| buf.copy_from_slice(data))
    }

    /// Borrow a page's bytes without copying. The page is transiently
    /// pinned for the duration of `f` (released even if `f` panics).
    pub fn with_page<R>(&self, file: FileId, page: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let pinned = self.acquire(file, page);
        f(pinned.bytes())
    }

    /// Fallible twin of [`BufferPool::with_page`]: a page fault surfaces
    /// as a typed error instead of a panic and `f` is not run.
    pub fn try_with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, PageError> {
        let pinned = self.try_acquire(file, page)?;
        Ok(f(pinned.bytes()))
    }

    /// Pin a page for zero-copy reading. Used by
    /// [`Pager::pin_page`](crate::Pager::pin_page) to build a
    /// [`PageGuard`](crate::PageGuard).
    pub(crate) fn pin_slot(&self, file: FileId, page: PageId) -> PinnedSlot {
        self.acquire(file, page)
    }

    /// Fallible twin of [`BufferPool::pin_slot`] — the foundation of
    /// [`Pager::try_pin_page`](crate::Pager::try_pin_page).
    pub(crate) fn try_pin_slot(&self, file: FileId, page: PageId) -> Result<PinnedSlot, PageError> {
        self.try_acquire(file, page)
    }

    /// Pin a page, returning a pointer to its (stable) bytes and its
    /// physical page number for [`BufferPool::unpin`]. While the pin is
    /// held the frame is exempt from eviction and `clear_cache`, and writes
    /// to the page panic.
    ///
    /// This is the historical manual-pin API, kept for tests and custom
    /// configurations; the caller must guarantee the pool outlives the pin
    /// and must balance it with `unpin`. Higher-level code uses
    /// [`Pager::pin_page`](crate::Pager::pin_page), whose guard manages the
    /// pin automatically.
    pub fn pin(&self, file: FileId, page: PageId) -> (NonNull<[u8; PAGE_SIZE]>, u64) {
        let pinned = self.acquire(file, page);
        let (ptr, phys) = (pinned.slot().data_ptr(), pinned.slot().phys());
        // Hand the pin itself to the caller (balanced by `unpin`).
        pinned.leak_pin();
        (ptr, phys)
    }

    /// Release one pin on the frame holding physical page `phys`
    /// (counterpart of [`BufferPool::pin`]).
    ///
    /// Panics if `phys` is not cached — an unbalanced pin/unpin pair. The
    /// message names the physical page and (when the reverse mapping still
    /// exists) the logical file and page, since "which page was that?" is
    /// the first question the panic raises.
    pub fn unpin(&self, phys: u64) {
        let core = self.policy.lock();
        let idx = match core.map.get(&phys) {
            Some(&idx) => idx,
            None => {
                // Cold path: reverse-map the physical page for the message.
                let owner = (0..core.disk.file_count())
                    .map(|f| FileId(f as u32))
                    .find_map(|f| {
                        (0..core.disk.file_len(f))
                            .find(|&p| core.disk.phys(f, p) == phys)
                            .map(|p| format!("page {p} of {f:?}"))
                    })
                    .unwrap_or_else(|| "not an allocated page of any file".to_string());
                panic!(
                    "unpin of uncached physical page {phys} ({owner}): pin/unpin calls \
                     are unbalanced or the frame was dropped while pinned"
                );
            }
        };
        core.entry(idx).slot.unpin();
    }

    /// Fallible twin of [`BufferPool::unpin`]: releases one pin and
    /// returns `true` when `phys` is cached, `false` (a no-op) when it is
    /// not — for callers that want to balance pins without risking the
    /// unbalanced-pair panic.
    pub fn unpin_checked(&self, phys: u64) -> bool {
        let core = self.policy.lock();
        match core.map.get(&phys) {
            Some(&idx) => {
                core.entry(idx).slot.unpin();
                true
            }
            None => false,
        }
    }

    /// Pin count of the frame caching `(file, page)`, if cached.
    pub fn pin_count(&self, file: FileId, page: PageId) -> Option<u32> {
        let core = self.policy.lock();
        let phys = core.disk.phys(file, page);
        core.map
            .get(&phys)
            .map(|&idx| core.entry(idx).slot.pin_count())
    }

    /// Overwrite a whole page. Panics if the page is pinned: a pinned
    /// frame's bytes are borrowed by [`PageGuard`](crate::PageGuard)s.
    pub fn write_page(&self, file: FileId, page: PageId, data: &[u8]) {
        self.try_write_page(file, page, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`BufferPool::write_page`]: refused with
    /// [`PageError::ReadOnly`] when the pool is degraded, and a failed
    /// fetch of the target page surfaces as its typed error. Still panics
    /// if the page is pinned (that is a caller bug, not a media fault).
    pub fn try_write_page(&self, file: FileId, page: PageId, data: &[u8]) -> Result<(), PageError> {
        assert_eq!(data.len(), PAGE_SIZE, "write_page requires a full page");
        let mut core = self.policy.lock();
        if let Some(cause) = &core.read_only {
            return Err(PageError::ReadOnly {
                cause: cause.clone(),
            });
        }
        self.drain_touches(&mut core);
        let idx = self.try_fetch_locked(&mut core, file, page)?;
        let entry = core.entry(idx);
        let shard = self.shard_of(entry.key);
        {
            // The shard write latch excludes concurrent pinners for the
            // duration of the copy.
            let _map = shard.map.write();
            assert_eq!(
                entry.slot.pin_count(),
                0,
                "cannot write page {page} of {file:?}: page is pinned"
            );
            // SAFETY: no pins exist and none can be acquired while we hold
            // the shard write latch, so the buffer is exclusively ours.
            unsafe { entry.slot.buffer_mut().copy_from_slice(data) };
        }
        core.entry_mut(idx).dirty = true;
        Ok(())
    }

    /// Mark the cached frame holding `phys` dirty. The caller must hold a
    /// pin on it (so the mapping cannot change under us).
    fn mark_dirty_phys(&self, phys: u64) {
        let mut core = self.policy.lock();
        if let Some(&idx) = core.map.get(&phys) {
            core.entry_mut(idx).dirty = true;
        }
    }

    /// Edit a page **in place** under the frame's write latch — the
    /// concurrent write path's mutation primitive. The page is pinned and
    /// fetched like any read (same miss accounting), the frame latch is
    /// taken exclusively, the content seqlock goes odd, and `f` gets the
    /// raw buffer; concurrent optimistic readers either retry or block on
    /// the shared latch, and never observe a torn page.
    ///
    /// Refused with [`PageError::ReadOnly`] when the pool is degraded
    /// (checked before any byte moves). Unlike
    /// [`BufferPool::try_write_page`] this works *with* reader pins
    /// outstanding — that is its whole point — so callers must route every
    /// concurrent read of such pages through versioned snapshots
    /// ([`crate::VersionedPage`]), not plain guards.
    ///
    /// `f` may call back into the pool (e.g. to allocate or latch another
    /// page, as a structure modification must): policy-lock holders never
    /// block on frame latches (flushes skip latched frames), so the nested
    /// acquisition cannot deadlock.
    pub fn try_with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, PageError> {
        let pinned = self.try_acquire(file, page)?;
        let phys = pinned.slot().phys();
        {
            // Degraded gate + pre-mark dirty under the policy lock, before
            // any byte moves.
            let mut core = self.policy.lock();
            if let Some(cause) = &core.read_only {
                return Err(PageError::ReadOnly {
                    cause: cause.clone(),
                });
            }
            if let Some(&idx) = core.map.get(&phys) {
                core.entry_mut(idx).dirty = true;
            }
        }
        let slot = pinned.slot();
        let r = slot.with_latched_write(|| {
            // SAFETY: inside `with_latched_write` the frame latch is held
            // exclusively and the content seqlock is odd — the concurrent-
            // path exclusivity contract of `buffer_mut`.
            f(unsafe { slot.buffer_mut() })
        });
        // Re-mark dirty: a flush between the pre-mark and the latch
        // acquisition may have written the old bytes back and cleared the
        // flag; the mutation must not be silently lost to eviction. The
        // pin held above guarantees the mapping is unchanged.
        self.mark_dirty_phys(phys);
        Ok(r)
    }

    /// Pin a page for versioned optimistic reads — the concurrent write
    /// path's read primitive (see [`crate::VersionedPage`]). Accounting is
    /// identical to any other pin.
    pub(crate) fn try_pin_versioned_slot(
        &self,
        file: FileId,
        page: PageId,
    ) -> Result<PinnedSlot, PageError> {
        self.try_acquire(file, page)
    }

    /// Write every dirty unpinned frame back to disk (charging write costs)
    /// and drop those frames. Pinned frames stay cached — their bytes are
    /// still borrowed — and keep their dirty flag for a later write-back.
    pub fn clear_cache(&self) {
        let mut core = self.policy.lock();
        self.drain_touches(&mut core);
        let indices: Vec<u32> = core.map.values().copied().collect();
        for idx in indices {
            if core.entry(idx).slot.pin_count() == 0 {
                self.drop_frame(&mut core, idx);
            }
        }
        // A cleared cache also forgets the head position: the next read pays
        // a seek.
        core.last_fetched = None;
    }

    /// Write back (if dirty), unmap, unlink and free one frame. Returns
    /// false if a racing reader pinned the frame after it was selected (the
    /// re-check under the shard write latch failed — impossible
    /// single-threaded), or if the frame is dirty but cannot be written
    /// back (degraded read-only mode; the frame stays cached so reads keep
    /// serving its bytes).
    fn drop_frame(&self, core: &mut PolicyCore, idx: u32) -> bool {
        let (key, phys) = {
            let e = core.entry(idx);
            (e.key, e.phys)
        };
        // In degraded mode a dirty frame is unevictable: its write-back
        // would fail and dropping it anyway would lose the only good copy.
        if core.entry(idx).dirty && core.read_only.is_some() {
            return false;
        }
        {
            let shard = self.shard_of(key);
            let mut map = shard.map.write();
            let e = core.entry(idx);
            if self.evictor_pin_recheck_enabled() && e.slot.pin_count() != 0 {
                return false;
            }
            // Unpinned under the write latch ⇒ no reader holds or can
            // acquire a view; safe to unmap (and later recycle).
            map.remove(&key);
        }
        if core.entry(idx).dirty {
            core.entry_mut(idx).dirty = false;
            let slot = core.entry(idx).slot.clone();
            // SAFETY: frame is unmapped and unpinned — no shared borrows.
            let bytes = unsafe { slot.bytes() };
            if let Err(e) = core.disk.write_phys(phys, bytes) {
                // A failed write-back flips the pool into degraded
                // read-only mode instead of panicking: restore the frame
                // (remap, re-dirty — no bytes were lost) and record the
                // cause; every later mutation returns `ReadOnly` with it
                // while reads keep serving from cache and disk.
                core.entry_mut(idx).dirty = true;
                self.shard_of(key).map.write().insert(key, slot);
                if core.read_only.is_none() {
                    core.read_only = Some(Arc::from(e.to_string().as_str()));
                }
                return false;
            }
            core.stats.writes += 1;
            core.stats.io_time += core.cost.write;
        }
        let hot = core.entry(idx).hot;
        self_unlink_and_free(core, hot, idx, phys);
        true
    }

    /// Install a page in a (possibly recycled) frame slot, evicting first
    /// if the pool is full. Returns the entry index. The caller must hold
    /// the policy lock with touch logs drained.
    ///
    /// A failed disk read is handled per the error taxonomy: transient
    /// errors (including short reads) are retried under the pool's
    /// [`RetryPolicy`] with deterministic doubling backoff; corruption
    /// quarantines the page and fails fast forever after; anything else
    /// surfaces as [`PageError::Io`]. On failure the cache is left
    /// consistent — nothing is mapped and the recycled slot returns to the
    /// free pool (evictions already performed stand; their write-backs
    /// were real I/O).
    fn try_install(
        &self,
        core: &mut PolicyCore,
        key: (FileId, PageId),
        phys: u64,
        zeroed_dirty: bool,
    ) -> Result<u32, PageError> {
        debug_assert!(!core.map.contains_key(&phys));
        while core.map.len() >= core.capacity {
            if !self.evict_one(core) {
                // Every frame is pinned (or unevictable in degraded mode):
                // grow past capacity instead of deadlocking; the overflow
                // drains as pins are released.
                break;
            }
        }
        let read_into =
            |core: &mut PolicyCore, buf: &mut [u8; PAGE_SIZE]| -> Result<(), PageError> {
                let policy = core.retry;
                let clock = core.clock.clone();
                let mut attempt: u32 = 1;
                loop {
                    match core.disk.read_phys(phys, buf) {
                        Ok(()) => return Ok(()),
                        Err(e) if e.is_corruption() => {
                            // Never retried — re-reading rotten bits is
                            // wasted I/O. Quarantine so every later access
                            // fails fast, naming the page.
                            core.quarantine.insert(phys, key);
                            return Err(PageError::Corrupt {
                                file: key.0,
                                page: key.1,
                                phys,
                                cause: e.to_string(),
                            });
                        }
                        Err(e) if e.is_transient() => {
                            if attempt >= policy.attempts.max(1) {
                                return Err(PageError::Transient {
                                    file: key.0,
                                    page: key.1,
                                    phys,
                                    attempts: attempt,
                                    cause: e.to_string(),
                                });
                            }
                            clock.sleep(policy.backoff_before(attempt));
                            core.stats.retries += 1;
                            attempt += 1;
                        }
                        Err(e) => {
                            return Err(PageError::Io {
                                file: key.0,
                                page: key.1,
                                phys,
                                cause: e.to_string(),
                            });
                        }
                    }
                }
            };
        let slot = match core.free_slots.pop() {
            Some(slot) => {
                // SAFETY: a recycled slot is unmapped with no pins — this
                // Arc is its only reference, so the buffer is exclusive.
                let read = unsafe {
                    slot.reset_for(phys);
                    let buf = slot.buffer_mut();
                    if zeroed_dirty {
                        buf.fill(0);
                        Ok(())
                    } else {
                        read_into(core, buf)
                    }
                };
                if let Err(e) = read {
                    // Still unmapped and unpinned; hand it back for the
                    // next install (it is reset again on reuse).
                    core.free_slots.push(slot);
                    return Err(e);
                }
                slot
            }
            None => {
                let mut data = Box::new([0u8; PAGE_SIZE]);
                if !zeroed_dirty {
                    read_into(core, &mut data)?;
                }
                Arc::new(FrameSlot::new(data, phys))
            }
        };
        let entry = PolicyEntry {
            phys,
            key,
            slot: slot.clone(),
            dirty: zeroed_dirty,
            hot: false,
            prev: NIL,
            next: NIL,
        };
        let idx = match core.free_entries.pop() {
            Some(idx) => {
                core.entries[idx as usize] = Some(entry);
                idx
            }
            None => {
                let idx = core.entries.len() as u32;
                core.entries.push(Some(entry));
                idx
            }
        };
        core.map.insert(phys, idx);
        core.push_tail(false, idx);
        // Publish to the mapping shard last, so concurrent readers only see
        // fully installed frames.
        self.shard_of(key).map.write().insert(key, slot);
        Ok(idx)
    }

    /// Evict the preferred victim (oldest unpinned cold frame, with an
    /// epoch reset to cold when no cold frame is evictable). Returns false
    /// when every frame is pinned.
    fn evict_one(&self, core: &mut PolicyCore) -> bool {
        let mut spliced = false;
        for _ in 0..EVICT_RETRY_LIMIT {
            match core.first_unpinned_cold() {
                Some(idx) => {
                    if self.drop_frame(core, idx) {
                        return true;
                    }
                    // A racing reader pinned the victim after selection;
                    // rescan (it is now skipped as pinned).
                }
                None => {
                    // Without pins the epoch reset only fires when the cold
                    // list is empty (every frame hot) — the historical
                    // policy. With pins it also fires when every cold frame
                    // is pinned, so an unpinned hot frame is still found
                    // rather than growing the pool.
                    if spliced || !core.splice_hot_into_cold() {
                        return false;
                    }
                    spliced = true;
                }
            }
        }
        false
    }
}

/// Unlink one entry from its list and return entry + slot to the free
/// pools. (Free function to appease borrow scopes in `drop_frame`.)
fn self_unlink_and_free(core: &mut PolicyCore, hot: bool, idx: u32, phys: u64) {
    core.unlink(hot, idx);
    core.map.remove(&phys);
    let entry = core.entries[idx as usize].take().expect("live entry");
    core.free_entries.push(idx);
    core.free_slots.push(entry.slot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Disk;
    use std::time::Duration;

    fn pool(pages: usize) -> (BufferPool, FileId) {
        let mut disk = Disk::new();
        let f = disk.create_file();
        (
            BufferPool::new(disk, pages * PAGE_SIZE, IoCostModel::free()),
            f,
        )
    }

    #[test]
    fn hit_after_first_read() {
        let (p, f) = pool(4);
        p.allocate_page(f);
        p.reset_stats();
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf); // cache: {0}
        p.read_page(f, 1, &mut buf); // cache: {0,1}
        p.read_page(f, 0, &mut buf); // touch 0
        p.read_page(f, 2, &mut buf); // evicts 1
        p.read_page(f, 0, &mut buf); // hit
        p.read_page(f, 1, &mut buf); // miss again
        assert_eq!(p.stats().misses(), 4);
        assert_eq!(p.stats().hits, 2);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (p, f) = pool(1);
        p.allocate_page(f);
        p.allocate_page(f);
        let mut page = vec![0u8; PAGE_SIZE];
        page[5] = 55;
        p.write_page(f, 0, &page);
        // Force eviction of page 0 by touching page 1.
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 1, &mut buf);
        p.read_page(f, 0, &mut buf);
        assert_eq!(buf[5], 55);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let (p, f) = pool(1);
        for _ in 0..6 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        // 0,1,2 sequential run; then jump to 5; then 4 (backwards = random).
        for pg in [0u64, 1, 2, 5, 4] {
            p.read_page(f, pg, &mut buf);
        }
        assert_eq!(p.stats().seq_misses, 2); // pages 1 and 2
        assert_eq!(p.stats().random_misses, 3); // pages 0, 5, 4
    }

    #[test]
    fn cost_model_charges_io_time() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = BufferPool::new(
            disk,
            PAGE_SIZE,
            IoCostModel {
                random_read: Duration::from_millis(8),
                seq_read: Duration::from_millis(1),
                write: Duration::ZERO,
            },
        );
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        for pg in 0..3 {
            p.read_page(f, pg, &mut buf);
        }
        // 1 random + 2 sequential.
        assert_eq!(p.stats().io_time, Duration::from_millis(10));
    }

    #[test]
    fn capacity_minimum_is_one_page() {
        let disk = Disk::new();
        let p = BufferPool::new(disk, 10, IoCostModel::free());
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn writes_counted_on_clear() {
        let (p, f) = pool(4);
        p.allocate_page(f);
        p.reset_stats();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 1;
        p.write_page(f, 0, &page);
        p.clear_cache();
        assert_eq!(p.stats().writes, 1);
    }

    #[test]
    fn sync_flushes_in_phys_order_and_counts_synced_pages() {
        use std::sync::{Arc, Mutex};

        /// MemStorage wrapper recording the physical-page order of writes.
        struct Recording {
            inner: Disk,
            writes: Arc<Mutex<Vec<u64>>>,
        }
        impl Storage for Recording {
            fn create_file(&mut self) -> FileId {
                self.inner.create_file()
            }
            fn file_count(&self) -> usize {
                self.inner.file_count()
            }
            fn file_len(&self, file: FileId) -> u64 {
                self.inner.file_len(file)
            }
            fn total_pages(&self) -> u64 {
                self.inner.total_pages()
            }
            fn allocate_page(&mut self, file: FileId) -> PageId {
                self.inner.allocate_page(file)
            }
            fn phys(&self, file: FileId, page: PageId) -> u64 {
                self.inner.phys(file, page)
            }
            fn read_phys(
                &mut self,
                phys: u64,
                out: &mut [u8; PAGE_SIZE],
            ) -> Result<(), StorageError> {
                self.inner.read_phys(phys, out)
            }
            fn write_phys(&mut self, phys: u64, data: &[u8]) -> Result<(), StorageError> {
                self.writes.lock().unwrap().push(phys);
                self.inner.write_phys(phys, data)
            }
            fn put_catalog(&mut self, key: &str, bytes: &[u8]) {
                self.inner.put_catalog(key, bytes)
            }
            fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
                self.inner.get_catalog(key)
            }
            fn catalog_keys(&self) -> Vec<String> {
                self.inner.catalog_keys()
            }
        }

        let writes = Arc::new(Mutex::new(Vec::new()));
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = BufferPool::new(
            Recording {
                inner: disk,
                writes: writes.clone(),
            },
            8 * PAGE_SIZE,
            IoCostModel::free(),
        );
        for _ in 0..8 {
            p.allocate_page(f);
        }
        // Dirty the pages in a scrambled order; the HashMap behind the
        // pool would replay an arbitrary order without the explicit sort.
        writes.lock().unwrap().clear();
        for pg in [5u64, 1, 7, 3, 0, 6, 2, 4] {
            p.write_page(f, pg, &[pg as u8 + 1; PAGE_SIZE]);
        }
        p.sync().unwrap();
        assert_eq!(
            *writes.lock().unwrap(),
            (0..8).collect::<Vec<u64>>(),
            "sync must flush the dirty set in ascending physical order"
        );
        let s = p.stats();
        assert_eq!(s.synced_pages, 8);
        assert_eq!(s.synced_bytes, 8 * PAGE_SIZE as u64);
        assert_eq!(s.writes, 8);
        // A second sync with nothing dirty flushes nothing.
        p.sync().unwrap();
        assert_eq!(p.stats().synced_pages, 8);
    }

    #[test]
    fn scan_does_not_flush_hot_pages() {
        // A frame touched twice (hot) survives a long touched-once scan
        // that exceeds capacity — the scan-resistance the cold/hot split
        // exists for.
        let (p, f) = pool(4);
        for _ in 0..12 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf); // page 0 is now hot
        for pg in 1..12 {
            p.read_page(f, pg, &mut buf);
        }
        p.reset_stats();
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().hits, 1, "hot page 0 must survive the scan");
    }

    #[test]
    fn epoch_reset_when_all_frames_hot() {
        let (p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        // Make pages 0 and 1 hot.
        for pg in [0u64, 1, 0, 1] {
            p.read_page(f, pg, &mut buf);
        }
        // All frames hot: loading 2 must still evict someone (page 0, the
        // LRU after the epoch reset) rather than grow or panic.
        p.read_page(f, 2, &mut buf);
        p.reset_stats();
        p.read_page(f, 1, &mut buf);
        assert_eq!(p.stats().hits, 1, "page 1 (recently used) must survive");
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1, "page 0 was the epoch-reset victim");
    }

    #[test]
    fn eviction_matches_historical_min_scan_policy() {
        // Drive a pool with a mixed access pattern and mirror the policy
        // the linked lists replaced: victim = min (hot, last_used), with an
        // epoch reset when every frame is hot. The miss sequence must be
        // identical — this is what keeps the paper's page-access counts
        // reproducible across the O(capacity), O(1), and sharded-deferred
        // implementations.
        #[derive(Clone)]
        struct Model {
            cap: usize,
            // (phys, hot, last_used)
            frames: Vec<(u64, bool, u64)>,
            clock: u64,
        }
        impl Model {
            fn access(&mut self, phys: u64) -> bool {
                self.clock += 1;
                if let Some(fr) = self.frames.iter_mut().find(|fr| fr.0 == phys) {
                    fr.1 = true;
                    fr.2 = self.clock;
                    return true; // hit
                }
                if self.frames.len() >= self.cap {
                    if self.frames.iter().all(|fr| fr.1) {
                        for fr in &mut self.frames {
                            fr.1 = false;
                        }
                    }
                    let (i, _) = self
                        .frames
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, fr)| (fr.1, fr.2))
                        .unwrap();
                    self.frames.remove(i);
                }
                self.frames.push((phys, false, self.clock));
                false // miss
            }
        }

        let (p, f) = pool(4);
        for _ in 0..16 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut model = Model {
            cap: 4,
            frames: Vec::new(),
            clock: 0,
        };
        // Deterministic pseudo-random walk mixing scans and re-touches.
        let mut x = 7u64;
        let mut buf = vec![0u8; PAGE_SIZE];
        for step in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pg = if step % 3 == 0 {
                step as u64 % 16
            } else {
                x % 16
            };
            let before = p.stats().hits;
            p.read_page(f, pg, &mut buf);
            let hit = p.stats().hits > before;
            assert_eq!(
                hit,
                model.access(pg),
                "divergence from reference policy at step {step} (page {pg})"
            );
        }
    }

    #[test]
    fn touch_logs_stay_bounded_on_hit_only_workload() {
        // A fully cached working set produces hits only — no miss ever
        // reaches a policy-locked drain point, so the opportunistic drain
        // must keep the parked-touch logs bounded.
        let (p, f) = pool(4);
        p.allocate_page(f);
        let mut buf = vec![0u8; PAGE_SIZE];
        for _ in 0..TOUCH_LOG_DRAIN_THRESHOLD * 3 {
            p.read_page(f, 0, &mut buf);
        }
        let pending: usize = p.shards.iter().map(|s| s.touches.lock().len()).sum();
        assert!(
            pending < TOUCH_LOG_DRAIN_THRESHOLD,
            "touch logs must drain opportunistically, found {pending} parked entries"
        );
        // Every read hit (allocate_page installs the page in the cache).
        assert_eq!(p.stats().hits, (TOUCH_LOG_DRAIN_THRESHOLD * 3) as u64);
    }

    #[test]
    fn pinned_page_survives_cache_full_of_misses() {
        let (p, f) = pool(2);
        for _ in 0..10 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let (ptr, phys) = p.pin(f, 0);
        // SAFETY: the pin keeps the buffer alive and un-mutated.
        let bytes = unsafe { &ptr.as_ref()[..] };
        let before: Vec<u8> = bytes.to_vec();
        let mut buf = vec![0u8; PAGE_SIZE];
        for pg in 1..10 {
            p.read_page(f, pg, &mut buf);
        }
        p.reset_stats();
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().hits, 1, "pinned page must not be evicted");
        assert_eq!(bytes, &before[..], "pinned bytes must be stable");
        p.unpin(phys);
    }

    #[test]
    fn unpin_checked_balances_or_reports_uncached() {
        let (p, f) = pool(2);
        p.allocate_page(f);
        let (_, phys) = p.pin(f, 0);
        assert_eq!(p.pin_count(f, 0), Some(1));
        assert!(p.unpin_checked(phys), "cached page must release its pin");
        assert_eq!(p.pin_count(f, 0), Some(0));
        assert!(
            !p.unpin_checked(u64::MAX),
            "uncached physical page is a no-op, not a panic"
        );
    }

    #[test]
    fn unpinned_hot_frame_evicted_when_all_cold_frames_pinned() {
        let (p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf); // page 0: hot, unpinned
        let (_, phys) = p.pin(f, 1); // page 1: cold, pinned
                                     // Loading page 2 must evict hot-but-unpinned page 0, not grow.
        p.read_page(f, 2, &mut buf);
        assert_eq!(p.cached_frames(), p.capacity(), "pool must not grow");
        p.reset_stats();
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1, "page 0 must have been evicted");
        p.unpin(phys);
    }

    #[test]
    fn all_pinned_overflows_capacity_then_drains() {
        let (p, f) = pool(2);
        for _ in 0..4 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let pins: Vec<_> = (0..2).map(|pg| p.pin(f, pg).1).collect();
        // Both frames pinned: further reads must still succeed (overflow).
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 2, &mut buf);
        p.read_page(f, 3, &mut buf);
        assert!(p.cached_frames() > p.capacity());
        for phys in pins {
            p.unpin(phys);
        }
        // With pins released the pool drains back to capacity.
        p.read_page(f, 2, &mut buf);
        p.allocate_page(f);
        assert!(p.cached_frames() <= p.capacity());
    }

    #[test]
    fn double_pin_and_unpin_balance() {
        let (p, f) = pool(2);
        p.allocate_page(f);
        let (_, phys_a) = p.pin(f, 0);
        let (_, phys_b) = p.pin(f, 0);
        assert_eq!(phys_a, phys_b);
        assert_eq!(p.pin_count(f, 0), Some(2));
        p.unpin(phys_a);
        assert_eq!(p.pin_count(f, 0), Some(1));
        p.unpin(phys_b);
        assert_eq!(p.pin_count(f, 0), Some(0));
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn write_to_pinned_page_panics() {
        let (p, f) = pool(2);
        p.allocate_page(f);
        let _pin = p.pin(f, 0);
        p.write_page(f, 0, &[0u8; PAGE_SIZE]);
    }

    #[test]
    fn clear_cache_keeps_pinned_frames() {
        let (p, f) = pool(4);
        for _ in 0..2 {
            p.allocate_page(f);
        }
        let (_, phys) = p.pin(f, 0);
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().hits, 1, "pinned frame must survive clear_cache");
        p.read_page(f, 1, &mut buf);
        assert_eq!(p.stats().misses(), 1, "unpinned frame must be dropped");
        p.unpin(phys);
    }

    #[test]
    fn unpinned_eviction_still_writes_back_dirty_frames() {
        let (p, f) = pool(1);
        p.allocate_page(f);
        p.allocate_page(f);
        let mut page = vec![0u8; PAGE_SIZE];
        page[9] = 99;
        p.write_page(f, 0, &page);
        let (_, phys) = p.pin(f, 0);
        p.unpin(phys);
        p.reset_stats();
        // Eviction by loading page 1: the previously pinned, now unpinned
        // dirty frame must be written back, not dropped.
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 1, &mut buf);
        assert_eq!(p.stats().writes, 1);
        p.read_page(f, 0, &mut buf);
        assert_eq!(buf[9], 99);
    }

    // ------- fault handling: retries, quarantine, degraded mode -------

    use std::sync::{Arc, Mutex as StdMutex};

    /// What the [`FlakyDisk`] below should do, shared with the test body.
    #[derive(Default)]
    struct FaultPlan {
        /// Errors returned by the next `read_phys` calls, front first;
        /// reads succeed once drained.
        read_errors: Vec<StorageError>,
        /// Physical pages that always read back corrupt.
        corrupt: std::collections::HashSet<u64>,
        /// When set, every `write_phys` fails hard.
        fail_writes: bool,
    }

    /// A [`Disk`] whose faults are scripted by a shared [`FaultPlan`].
    struct FlakyDisk {
        inner: Disk,
        plan: Arc<StdMutex<FaultPlan>>,
    }

    impl Storage for FlakyDisk {
        fn create_file(&mut self) -> FileId {
            self.inner.create_file()
        }
        fn file_count(&self) -> usize {
            self.inner.file_count()
        }
        fn file_len(&self, file: FileId) -> u64 {
            self.inner.file_len(file)
        }
        fn total_pages(&self) -> u64 {
            self.inner.total_pages()
        }
        fn allocate_page(&mut self, file: FileId) -> PageId {
            self.inner.allocate_page(file)
        }
        fn phys(&self, file: FileId, page: PageId) -> u64 {
            self.inner.phys(file, page)
        }
        fn read_phys(&mut self, phys: u64, out: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
            let mut plan = self.plan.lock().unwrap();
            if !plan.read_errors.is_empty() {
                return Err(plan.read_errors.remove(0));
            }
            if plan.corrupt.contains(&phys) {
                return Err(StorageError::ChecksumMismatch {
                    what: format!("page {phys}"),
                    expected: 1,
                    actual: 2,
                });
            }
            self.inner.read_phys(phys, out)
        }
        fn write_phys(&mut self, phys: u64, data: &[u8]) -> Result<(), StorageError> {
            if self.plan.lock().unwrap().fail_writes {
                return Err(StorageError::Io(std::io::Error::other(
                    "simulated dead sector",
                )));
            }
            self.inner.write_phys(phys, data)
        }
        fn put_catalog(&mut self, key: &str, bytes: &[u8]) {
            self.inner.put_catalog(key, bytes)
        }
        fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
            self.inner.get_catalog(key)
        }
        fn catalog_keys(&self) -> Vec<String> {
            self.inner.catalog_keys()
        }
    }

    /// A [`Clock`] that records requested sleeps instead of sleeping.
    struct TestClock(StdMutex<Vec<Duration>>);
    impl Clock for TestClock {
        fn sleep(&self, d: Duration) {
            self.0.lock().unwrap().push(d);
        }
    }

    fn flaky_pool(pages: usize) -> (BufferPool, FileId, Arc<StdMutex<FaultPlan>>, Arc<TestClock>) {
        let plan = Arc::new(StdMutex::new(FaultPlan::default()));
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = BufferPool::new(
            FlakyDisk {
                inner: disk,
                plan: plan.clone(),
            },
            pages * PAGE_SIZE,
            IoCostModel::free(),
        );
        let clock = Arc::new(TestClock(StdMutex::new(Vec::new())));
        p.set_retry_clock(clock.clone());
        (p, f, plan, clock)
    }

    fn transient(msg: &str) -> StorageError {
        StorageError::Transient(std::io::Error::other(msg.to_string()))
    }

    #[test]
    fn transient_read_faults_are_absorbed_by_retries_with_deterministic_backoff() {
        let (p, f, plan, clock) = flaky_pool(4);
        p.allocate_page(f);
        p.write_page(f, 0, &[7u8; PAGE_SIZE]);
        p.clear_cache();
        p.reset_stats();
        // Two hiccups, then the medium recovers: within the default
        // 3-attempt policy, so the caller never sees an error.
        plan.lock().unwrap().read_errors = vec![transient("blip 1"), transient("blip 2")];
        let mut buf = vec![0u8; PAGE_SIZE];
        p.try_read_page(f, 0, &mut buf).expect("retries absorb it");
        assert_eq!(buf[0], 7);
        assert_eq!(p.stats().retries, 2);
        // Backoff under the injected clock: 1 ms, then doubled to 2 ms —
        // no wall-clock time spent.
        assert_eq!(
            *clock.0.lock().unwrap(),
            vec![Duration::from_millis(1), Duration::from_millis(2)]
        );
    }

    #[test]
    fn exhausted_retries_surface_the_last_error() {
        let (p, f, plan, clock) = flaky_pool(4);
        p.allocate_page(f);
        p.clear_cache();
        plan.lock().unwrap().read_errors = vec![
            transient("blip 1"),
            transient("blip 2"),
            transient("blip 3"),
        ];
        let mut buf = vec![0u8; PAGE_SIZE];
        let err = p.try_read_page(f, 0, &mut buf).unwrap_err();
        match &err {
            PageError::Transient {
                attempts, cause, ..
            } => {
                assert_eq!(*attempts, 3);
                assert!(
                    cause.contains("blip 3"),
                    "must carry the LAST error: {cause}"
                );
            }
            other => panic!("expected Transient, got {other:?}"),
        }
        assert_eq!(
            clock.0.lock().unwrap().len(),
            2,
            "two sleeps between three attempts"
        );
        // The fault has cleared (the scripted errors are drained): the
        // same query retried by the caller now succeeds.
        p.try_read_page(f, 0, &mut buf).expect("medium healed");
    }

    #[test]
    fn corruption_is_never_retried_and_quarantines_the_page() {
        let (p, f, plan, clock) = flaky_pool(4);
        p.allocate_page(f);
        p.clear_cache();
        p.reset_stats();
        plan.lock().unwrap().corrupt.insert(0);
        let mut buf = vec![0u8; PAGE_SIZE];
        let err = p.try_read_page(f, 0, &mut buf).unwrap_err();
        assert!(
            matches!(err, PageError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
        assert!(clock.0.lock().unwrap().is_empty(), "rot is not retried");
        assert_eq!(p.stats().retries, 0);
        // Even after the medium is "repaired", the quarantine remembers —
        // the page stays fenced until an operator clears it.
        plan.lock().unwrap().corrupt.clear();
        let err = p.try_read_page(f, 0, &mut buf).unwrap_err();
        assert!(matches!(err, PageError::Corrupt { .. }));
        assert!(err.to_string().contains("quarantine"), "got: {err}");
        assert_eq!(p.clear_quarantine(), 1);
        p.try_read_page(f, 0, &mut buf)
            .expect("cleared quarantine re-reads the (repaired) page");
    }

    #[test]
    fn failed_write_back_degrades_the_pool_to_read_only() {
        let (p, f, plan, _clock) = flaky_pool(1);
        p.allocate_page(f);
        p.allocate_page(f);
        let mut page = vec![0u8; PAGE_SIZE];
        page[3] = 33;
        p.write_page(f, 0, &page); // page 0 cached dirty
        plan.lock().unwrap().fail_writes = true;
        // Reading page 1 wants page 0's frame; the write-back fails, the
        // pool degrades — but the read itself must still be served (the
        // pool grows past capacity rather than losing the dirty frame).
        let mut buf = vec![0u8; PAGE_SIZE];
        p.try_read_page(f, 1, &mut buf).expect("reads keep serving");
        let cause = p.degraded().expect("failed write-back must degrade");
        assert!(cause.contains("dead sector"), "cause: {cause}");
        // Mutations are refused with the original cause…
        let err = p.try_write_page(f, 1, &page).unwrap_err();
        assert!(matches!(err, PageError::ReadOnly { .. }), "got: {err:?}");
        assert!(err.to_string().contains("dead sector"), "got: {err}");
        assert!(matches!(
            p.try_allocate_page(f),
            Err(PageError::ReadOnly { .. })
        ));
        assert!(matches!(p.try_sync(), Err(PageError::ReadOnly { .. })));
        // …and the dirty page's latest bytes are still readable.
        p.try_read_page(f, 0, &mut buf)
            .expect("dirty page readable");
        assert_eq!(buf[3], 33);
    }

    #[test]
    fn degraded_sync_via_infallible_entry_point_errors_not_panics() {
        let (p, f, plan, _clock) = flaky_pool(1);
        p.allocate_page(f);
        p.write_page(f, 0, &[1u8; PAGE_SIZE]);
        plan.lock().unwrap().fail_writes = true;
        assert!(p.sync().is_err(), "failing flush surfaces an error");
        assert!(p.degraded().is_some(), "failed sync flush degrades");
        assert!(p.sync().is_err(), "degraded pool refuses further syncs");
    }

    #[test]
    fn scrub_reports_exactly_the_damaged_pages_without_touching_counters() {
        let (p, f, plan, clock) = flaky_pool(4);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.sync().unwrap();
        p.reset_stats();
        plan.lock().unwrap().corrupt.insert(1);
        let report = p.scrub();
        assert_eq!(report.pages_checked, 3);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].page, 1);
        assert_eq!(report.quarantined, vec![(f, 1, 1)]);
        assert!(report.unreadable.is_empty());
        assert!(!report.is_clean());
        assert_eq!(p.stats().misses(), 0, "scrub must not move miss counters");
        assert_eq!(p.stats().hits, 0);
        // Repair + clear: the next scrub is clean, absorbing a transient
        // hiccup along the way (and counting its retry).
        plan.lock().unwrap().corrupt.clear();
        assert_eq!(p.clear_quarantine(), 1);
        clock.0.lock().unwrap().clear();
        plan.lock().unwrap().read_errors = vec![transient("hiccup")];
        let report = p.scrub();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.pages_checked, 3);
        assert_eq!(clock.0.lock().unwrap().len(), 1, "scrub retried the hiccup");
    }
}
