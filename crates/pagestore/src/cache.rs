//! Buffer pool over the simulated disk: scan-resistant cold/hot eviction,
//! pin-counted frames, and miss classification.
//!
//! The pool is deliberately small by default (32 KiB — the paper's §5
//! setting: "we set up the database cache to the minimum (32K)"), so that
//! query evaluation is I/O-bound and the miss counters approximate the true
//! disk page accesses an index incurs.
//!
//! ## Eviction policy
//!
//! Eviction prefers *cold* frames (touched only once since load) over *hot*
//! ones, oldest first, so a long sequential scan cannot flush hot pages such
//! as B-tree roots — the scan-resistant "midpoint" policy real database
//! caches (incl. Berkeley DB's priority buffers) use. When every frame is
//! hot, the whole pool ages back to cold (epoch reset) so stale hot pages
//! cannot monopolise the cache.
//!
//! The policy is realised as two intrusive lists (cold, FIFO by load order;
//! hot, LRU by last touch) instead of the historical O(capacity) scan for a
//! minimum `(hot, last_used)` pair. Both pick the **same victim**: the cold
//! list is only ever appended to in load order (and the epoch splice
//! preserves the hot list's LRU order), so its head is exactly the
//! least-recently-used cold frame. Eviction is O(1) amortized, and page
//! access counts are reproducible across the policy's two implementations.
//!
//! ## Pinned frames
//!
//! [`BufferPool::pin`] increments a frame's pin count; pinned frames are
//! exempt from eviction and from [`BufferPool::clear_cache`], and writing to
//! a pinned page panics. Frame buffers live in stable heap allocations that
//! are never moved or freed while pinned, which is what lets
//! [`PageGuard`](crate::PageGuard) hand out `&[u8]` page bytes without
//! copying while the pool keeps serving other pages. If every frame is
//! pinned, the pool grows past its capacity rather than deadlocking (the
//! overflow drains again as pins are released and frames are evicted).

use crate::cost::IoCostModel;
use crate::disk::{Disk, FileId, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use std::collections::HashMap;
use std::ptr::NonNull;

/// Sentinel for "no frame" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// A cached page frame. The page bytes live in a stable heap allocation
/// owned by the pool (`data` is a `Box` turned raw), so frames can be moved
/// between slots and lists without invalidating outstanding page guards.
struct Frame {
    phys: u64,
    data: NonNull<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// Touched more than once since load; hot frames live in the hot list.
    hot: bool,
    /// Outstanding [`PageGuard`](crate::PageGuard)s on this frame.
    pin_count: u32,
    /// Intrusive cold/hot list links (slot indices).
    prev: u32,
    next: u32,
}

/// Head/tail of one intrusive frame list.
#[derive(Clone, Copy)]
struct FrameList {
    head: u32,
    tail: u32,
}

impl FrameList {
    const EMPTY: FrameList = FrameList {
        head: NIL,
        tail: NIL,
    };
}

/// A page cache with scan-resistant eviction, pin-counted frames, miss
/// classification and cost accounting.
///
/// Most callers use the [`Pager`](crate::Pager) wrapper; the pool itself is
/// exposed for tests and custom configurations.
pub struct BufferPool {
    disk: Disk,
    capacity: usize,
    /// Frame slots; indices are stable (freed slots are reused, never
    /// compacted) so list links and the `map` stay valid.
    frames: Vec<Frame>,
    /// Free slot indices (page buffer allocations are kept for reuse).
    free: Vec<u32>,
    /// phys page -> slot index of the cached frame.
    map: HashMap<u64, u32>,
    cold: FrameList,
    hot: FrameList,
    /// Physical page of the most recent *disk fetch* (not cache hit), used to
    /// classify the next miss as sequential or random.
    last_fetched: Option<u64>,
    stats: IoStats,
    cost: IoCostModel,
}

// SAFETY: the raw frame buffers are owned exclusively by the pool (guards
// only read them, and only while the pool enforces their pin); nothing is
// tied to a particular thread.
unsafe impl Send for BufferPool {}

impl BufferPool {
    /// Create a pool caching at most `cache_bytes / PAGE_SIZE` pages
    /// (minimum 1).
    pub fn new(disk: Disk, cache_bytes: usize, cost: IoCostModel) -> Self {
        let capacity = (cache_bytes / PAGE_SIZE).max(1);
        BufferPool {
            disk,
            capacity,
            frames: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            cold: FrameList::EMPTY,
            hot: FrameList::EMPTY,
            last_fetched: None,
            stats: IoStats::default(),
            cost,
        }
    }

    /// Number of page frames the pool may hold (pins may transiently push it
    /// above this).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.map.len()
    }

    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_fetched = None;
    }

    pub fn set_cost_model(&mut self, cost: IoCostModel) {
        self.cost = cost;
    }

    /// Append a zeroed page to `file` and install it in the cache as dirty
    /// (it still needs a write-back, which is charged when evicted or
    /// flushed).
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let page = self.disk.allocate_page(file);
        let phys = self.disk.phys(file, page);
        let data = Box::new([0u8; PAGE_SIZE]);
        self.install(phys, data, true);
        page
    }

    /// Read a whole page into `buf`.
    pub fn read_page(&mut self, file: FileId, page: PageId, buf: &mut [u8]) {
        self.with_page(file, page, |data| buf.copy_from_slice(data))
    }

    /// Borrow a page's bytes without copying.
    pub fn with_page<R>(&mut self, file: FileId, page: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let idx = self.fetch(file, page);
        // SAFETY: `idx` is a live frame; the shared borrow lasts only for
        // `f`, and the pool is exclusively borrowed meanwhile.
        f(unsafe { &self.frames[idx as usize].data.as_ref()[..] })
    }

    /// Pin a page, returning a pointer to its (stable) bytes and its
    /// physical page number for [`BufferPool::unpin`]. While the pin is
    /// held the frame is exempt from eviction and `clear_cache`, and writes
    /// to the page panic.
    ///
    /// The caller (normally [`Pager::pin_page`](crate::Pager::pin_page))
    /// must guarantee the pool outlives the pin and must not mutate the
    /// page while any pin is outstanding.
    pub fn pin(&mut self, file: FileId, page: PageId) -> (NonNull<[u8; PAGE_SIZE]>, u64) {
        let idx = self.fetch(file, page) as usize;
        let frame = &mut self.frames[idx];
        frame.pin_count = frame
            .pin_count
            .checked_add(1)
            .expect("pin count overflow");
        (frame.data, frame.phys)
    }

    /// Add a pin to the already-pinned frame holding physical page `phys`
    /// (guard cloning). Unlike [`BufferPool::pin`] this is not a page
    /// access: no fetch happens and no counter moves.
    pub fn repin(&mut self, phys: u64) {
        let idx = *self.map.get(&phys).expect("repin of uncached page") as usize;
        let frame = &mut self.frames[idx];
        assert!(frame.pin_count > 0, "repin requires an existing pin");
        frame.pin_count += 1;
    }

    /// Release one pin on the frame holding physical page `phys`.
    pub fn unpin(&mut self, phys: u64) {
        let idx = *self.map.get(&phys).expect("unpin of uncached page") as usize;
        let frame = &mut self.frames[idx];
        assert!(frame.pin_count > 0, "unpin without pin");
        frame.pin_count -= 1;
    }

    /// Pin count of the frame caching `(file, page)`, if cached.
    pub fn pin_count(&self, file: FileId, page: PageId) -> Option<u32> {
        let phys = self.disk.phys(file, page);
        self.map
            .get(&phys)
            .map(|&idx| self.frames[idx as usize].pin_count)
    }

    /// Overwrite a whole page. Panics if the page is pinned: a pinned
    /// frame's bytes are borrowed by [`PageGuard`](crate::PageGuard)s.
    pub fn write_page(&mut self, file: FileId, page: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "write_page requires a full page");
        let idx = self.fetch(file, page) as usize;
        let frame = &mut self.frames[idx];
        assert_eq!(
            frame.pin_count, 0,
            "cannot write page {page} of {file:?}: page is pinned"
        );
        // SAFETY: the frame is live and unpinned, so no shared borrows of
        // its bytes exist outside this exclusive borrow of the pool.
        unsafe { frame.data.as_mut().copy_from_slice(data) };
        frame.dirty = true;
    }

    /// Write every dirty unpinned frame back to disk (charging write costs)
    /// and drop those frames. Pinned frames stay cached — their bytes are
    /// still borrowed — and keep their dirty flag for a later write-back.
    pub fn clear_cache(&mut self) {
        let indices: Vec<u32> = self.map.values().copied().collect();
        for idx in indices {
            if self.frames[idx as usize].pin_count == 0 {
                self.drop_frame(idx);
            }
        }
        // A cleared cache also forgets the head position: the next read pays
        // a seek.
        self.last_fetched = None;
    }

    /// Write back (if dirty), unlink and free one frame slot.
    fn drop_frame(&mut self, idx: u32) {
        let frame = &mut self.frames[idx as usize];
        debug_assert_eq!(frame.pin_count, 0, "cannot drop a pinned frame");
        if frame.dirty {
            frame.dirty = false;
            let phys = frame.phys;
            // SAFETY: frame is live; borrow ends before any other access.
            let bytes = unsafe { &frame.data.as_ref()[..] };
            self.disk.write_phys(phys, bytes);
            self.stats.writes += 1;
            self.stats.io_time += self.cost.write;
        }
        let frame = &self.frames[idx as usize];
        let (hot, phys) = (frame.hot, frame.phys);
        self.unlink(hot, idx);
        self.map.remove(&phys);
        self.free.push(idx);
    }

    /// Ensure the page is cached and return its frame slot.
    fn fetch(&mut self, file: FileId, page: PageId) -> u32 {
        let phys = self.disk.phys(file, page);
        if let Some(&idx) = self.map.get(&phys) {
            self.stats.hits += 1;
            self.touch(idx);
            return idx;
        }
        // Miss: classify, charge, load.
        let sequential = self.last_fetched == Some(phys.wrapping_sub(1));
        if sequential {
            self.stats.seq_misses += 1;
            self.stats.io_time += self.cost.seq_read;
        } else {
            self.stats.random_misses += 1;
            self.stats.io_time += self.cost.random_read;
        }
        self.last_fetched = Some(phys);
        let data = Box::new(*self.disk.read_phys(phys));
        self.install(phys, data, false)
    }

    /// Mark a frame hot when it is touched again after its load, moving it
    /// to the back of the hot LRU list.
    fn touch(&mut self, idx: u32) {
        let hot = self.frames[idx as usize].hot;
        self.unlink(hot, idx);
        self.frames[idx as usize].hot = true;
        self.push_tail(true, idx);
    }

    /// Install a page in a (possibly recycled) frame slot, evicting first
    /// if the pool is full. Returns the slot index.
    fn install(&mut self, phys: u64, data: Box<[u8; PAGE_SIZE]>, dirty: bool) -> u32 {
        debug_assert!(!self.map.contains_key(&phys));
        while self.map.len() >= self.capacity {
            if !self.evict_one() {
                // Every frame is pinned: grow past capacity instead of
                // deadlocking; the overflow drains as pins are released.
                break;
            }
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.frames[idx as usize];
                // Reuse the slot's buffer allocation.
                // SAFETY: the slot is free, so its buffer is unreferenced.
                unsafe { *slot.data.as_mut() = *data };
                slot.phys = phys;
                slot.dirty = dirty;
                slot.hot = false;
                slot.pin_count = 0;
                idx
            }
            None => {
                let idx = self.frames.len() as u32;
                self.frames.push(Frame {
                    phys,
                    // Stable heap allocation; freed in `Drop` (or reused).
                    data: NonNull::from(Box::leak(data)),
                    dirty,
                    hot: false,
                    pin_count: 0,
                    prev: NIL,
                    next: NIL,
                });
                idx
            }
        };
        self.map.insert(phys, idx);
        self.push_tail(false, idx);
        idx
    }

    /// Evict the preferred victim (oldest unpinned cold frame, with an
    /// epoch reset to cold when no cold frame is evictable). Returns false
    /// when every frame is pinned.
    fn evict_one(&mut self) -> bool {
        if let Some(idx) = self.first_unpinned_cold() {
            self.drop_frame(idx);
            return true;
        }
        // Epoch reset: age the whole hot list back to cold, preserving LRU
        // order, so stale hot pages cannot pin the cache forever. Without
        // pins this only fires when the cold list is empty (every frame
        // hot) — the historical policy. With pins it also fires when every
        // cold frame is pinned, so an unpinned hot frame is still found
        // rather than growing the pool.
        if self.hot.head != NIL {
            let mut idx = self.hot.head;
            while idx != NIL {
                self.frames[idx as usize].hot = false;
                idx = self.frames[idx as usize].next;
            }
            // Splice the (LRU-ordered) hot list onto the cold tail.
            if self.cold.head == NIL {
                self.cold = self.hot;
            } else {
                self.frames[self.cold.tail as usize].next = self.hot.head;
                self.frames[self.hot.head as usize].prev = self.cold.tail;
                self.cold.tail = self.hot.tail;
            }
            self.hot = FrameList::EMPTY;
            if let Some(idx) = self.first_unpinned_cold() {
                self.drop_frame(idx);
                return true;
            }
        }
        false
    }

    fn first_unpinned_cold(&self) -> Option<u32> {
        let mut idx = self.cold.head;
        while idx != NIL {
            let frame = &self.frames[idx as usize];
            if frame.pin_count == 0 {
                return Some(idx);
            }
            idx = frame.next;
        }
        None
    }

    fn list(&mut self, hot: bool) -> &mut FrameList {
        if hot {
            &mut self.hot
        } else {
            &mut self.cold
        }
    }

    fn push_tail(&mut self, hot: bool, idx: u32) {
        let tail = self.list(hot).tail;
        {
            let frame = &mut self.frames[idx as usize];
            frame.prev = tail;
            frame.next = NIL;
        }
        if tail != NIL {
            self.frames[tail as usize].next = idx;
        }
        let list = self.list(hot);
        if list.head == NIL {
            list.head = idx;
        }
        list.tail = idx;
    }

    fn unlink(&mut self, hot: bool, idx: u32) {
        let (prev, next) = {
            let frame = &mut self.frames[idx as usize];
            let links = (frame.prev, frame.next);
            frame.prev = NIL;
            frame.next = NIL;
            links
        };
        if prev != NIL {
            self.frames[prev as usize].next = next;
        }
        if next != NIL {
            self.frames[next as usize].prev = prev;
        }
        let list = self.list(hot);
        if list.head == idx {
            list.head = next;
        }
        if list.tail == idx {
            list.tail = prev;
        }
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        for frame in &self.frames {
            // SAFETY: each slot's buffer came from `Box::leak` in `install`
            // and is dropped exactly once, here.
            drop(unsafe { Box::from_raw(frame.data.as_ptr()) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pool(pages: usize) -> (BufferPool, FileId) {
        let mut disk = Disk::new();
        let f = disk.create_file();
        (
            BufferPool::new(disk, pages * PAGE_SIZE, IoCostModel::free()),
            f,
        )
    }

    #[test]
    fn hit_after_first_read() {
        let (mut p, f) = pool(4);
        p.allocate_page(f);
        p.reset_stats();
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (mut p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf); // cache: {0}
        p.read_page(f, 1, &mut buf); // cache: {0,1}
        p.read_page(f, 0, &mut buf); // touch 0
        p.read_page(f, 2, &mut buf); // evicts 1
        p.read_page(f, 0, &mut buf); // hit
        p.read_page(f, 1, &mut buf); // miss again
        assert_eq!(p.stats().misses(), 4);
        assert_eq!(p.stats().hits, 2);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (mut p, f) = pool(1);
        p.allocate_page(f);
        p.allocate_page(f);
        let mut page = vec![0u8; PAGE_SIZE];
        page[5] = 55;
        p.write_page(f, 0, &page);
        // Force eviction of page 0 by touching page 1.
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 1, &mut buf);
        p.read_page(f, 0, &mut buf);
        assert_eq!(buf[5], 55);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let (mut p, f) = pool(1);
        for _ in 0..6 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        // 0,1,2 sequential run; then jump to 5; then 4 (backwards = random).
        for pg in [0u64, 1, 2, 5, 4] {
            p.read_page(f, pg, &mut buf);
        }
        assert_eq!(p.stats().seq_misses, 2); // pages 1 and 2
        assert_eq!(p.stats().random_misses, 3); // pages 0, 5, 4
    }

    #[test]
    fn cost_model_charges_io_time() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let mut p = BufferPool::new(
            disk,
            PAGE_SIZE,
            IoCostModel {
                random_read: Duration::from_millis(8),
                seq_read: Duration::from_millis(1),
                write: Duration::ZERO,
            },
        );
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        for pg in 0..3 {
            p.read_page(f, pg, &mut buf);
        }
        // 1 random + 2 sequential.
        assert_eq!(p.stats().io_time, Duration::from_millis(10));
    }

    #[test]
    fn capacity_minimum_is_one_page() {
        let disk = Disk::new();
        let p = BufferPool::new(disk, 10, IoCostModel::free());
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn writes_counted_on_clear() {
        let (mut p, f) = pool(4);
        p.allocate_page(f);
        p.reset_stats();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 1;
        p.write_page(f, 0, &page);
        p.clear_cache();
        assert_eq!(p.stats().writes, 1);
    }

    #[test]
    fn scan_does_not_flush_hot_pages() {
        // A frame touched twice (hot) survives a long touched-once scan
        // that exceeds capacity — the scan-resistance the cold/hot split
        // exists for.
        let (mut p, f) = pool(4);
        for _ in 0..12 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf); // page 0 is now hot
        for pg in 1..12 {
            p.read_page(f, pg, &mut buf);
        }
        p.reset_stats();
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().hits, 1, "hot page 0 must survive the scan");
    }

    #[test]
    fn epoch_reset_when_all_frames_hot() {
        let (mut p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        // Make pages 0 and 1 hot.
        for pg in [0u64, 1, 0, 1] {
            p.read_page(f, pg, &mut buf);
        }
        // All frames hot: loading 2 must still evict someone (page 0, the
        // LRU after the epoch reset) rather than grow or panic.
        p.read_page(f, 2, &mut buf);
        p.reset_stats();
        p.read_page(f, 1, &mut buf);
        assert_eq!(p.stats().hits, 1, "page 1 (recently used) must survive");
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1, "page 0 was the epoch-reset victim");
    }

    #[test]
    fn eviction_matches_historical_min_scan_policy() {
        // Drive a pool with a mixed access pattern and mirror the policy
        // the linked lists replaced: victim = min (hot, last_used), with an
        // epoch reset when every frame is hot. The miss sequence must be
        // identical — this is what keeps the paper's page-access counts
        // reproducible across the O(capacity) and O(1) implementations.
        #[derive(Clone)]
        struct Model {
            cap: usize,
            // (phys, hot, last_used)
            frames: Vec<(u64, bool, u64)>,
            clock: u64,
        }
        impl Model {
            fn access(&mut self, phys: u64) -> bool {
                self.clock += 1;
                if let Some(fr) = self.frames.iter_mut().find(|fr| fr.0 == phys) {
                    fr.1 = true;
                    fr.2 = self.clock;
                    return true; // hit
                }
                if self.frames.len() >= self.cap {
                    if self.frames.iter().all(|fr| fr.1) {
                        for fr in &mut self.frames {
                            fr.1 = false;
                        }
                    }
                    let (i, _) = self
                        .frames
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, fr)| (fr.1, fr.2))
                        .unwrap();
                    self.frames.remove(i);
                }
                self.frames.push((phys, false, self.clock));
                false // miss
            }
        }

        let (mut p, f) = pool(4);
        for _ in 0..16 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut model = Model {
            cap: 4,
            frames: Vec::new(),
            clock: 0,
        };
        // Deterministic pseudo-random walk mixing scans and re-touches.
        let mut x = 7u64;
        let mut buf = vec![0u8; PAGE_SIZE];
        for step in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pg = if step % 3 == 0 { step as u64 % 16 } else { x % 16 };
            let before = p.stats().hits;
            p.read_page(f, pg, &mut buf);
            let hit = p.stats().hits > before;
            assert_eq!(
                hit,
                model.access(pg),
                "divergence from reference policy at step {step} (page {pg})"
            );
        }
    }

    #[test]
    fn pinned_page_survives_cache_full_of_misses() {
        let (mut p, f) = pool(2);
        for _ in 0..10 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let (ptr, phys) = p.pin(f, 0);
        // SAFETY: the pin keeps the buffer alive and un-mutated.
        let bytes = unsafe { &ptr.as_ref()[..] };
        let before: Vec<u8> = bytes.to_vec();
        let mut buf = vec![0u8; PAGE_SIZE];
        for pg in 1..10 {
            p.read_page(f, pg, &mut buf);
        }
        p.reset_stats();
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().hits, 1, "pinned page must not be evicted");
        assert_eq!(bytes, &before[..], "pinned bytes must be stable");
        p.unpin(phys);
    }

    #[test]
    fn unpinned_hot_frame_evicted_when_all_cold_frames_pinned() {
        let (mut p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf); // page 0: hot, unpinned
        let (_, phys) = p.pin(f, 1); // page 1: cold, pinned
        // Loading page 2 must evict hot-but-unpinned page 0, not grow.
        p.read_page(f, 2, &mut buf);
        assert_eq!(p.cached_frames(), p.capacity(), "pool must not grow");
        p.reset_stats();
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1, "page 0 must have been evicted");
        p.unpin(phys);
    }

    #[test]
    fn all_pinned_overflows_capacity_then_drains() {
        let (mut p, f) = pool(2);
        for _ in 0..4 {
            p.allocate_page(f);
        }
        p.clear_cache();
        let pins: Vec<_> = (0..2).map(|pg| p.pin(f, pg).1).collect();
        // Both frames pinned: further reads must still succeed (overflow).
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 2, &mut buf);
        p.read_page(f, 3, &mut buf);
        assert!(p.cached_frames() > p.capacity());
        for phys in pins {
            p.unpin(phys);
        }
        // With pins released the pool drains back to capacity.
        p.read_page(f, 2, &mut buf);
        p.allocate_page(f);
        assert!(p.cached_frames() <= p.capacity());
    }

    #[test]
    fn double_pin_and_unpin_balance() {
        let (mut p, f) = pool(2);
        p.allocate_page(f);
        let (_, phys_a) = p.pin(f, 0);
        let (_, phys_b) = p.pin(f, 0);
        assert_eq!(phys_a, phys_b);
        assert_eq!(p.pin_count(f, 0), Some(2));
        p.unpin(phys_a);
        assert_eq!(p.pin_count(f, 0), Some(1));
        p.unpin(phys_b);
        assert_eq!(p.pin_count(f, 0), Some(0));
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn write_to_pinned_page_panics() {
        let (mut p, f) = pool(2);
        p.allocate_page(f);
        let _pin = p.pin(f, 0);
        p.write_page(f, 0, &[0u8; PAGE_SIZE]);
    }

    #[test]
    fn clear_cache_keeps_pinned_frames() {
        let (mut p, f) = pool(4);
        for _ in 0..2 {
            p.allocate_page(f);
        }
        let (_, phys) = p.pin(f, 0);
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().hits, 1, "pinned frame must survive clear_cache");
        p.read_page(f, 1, &mut buf);
        assert_eq!(p.stats().misses(), 1, "unpinned frame must be dropped");
        p.unpin(phys);
    }

    #[test]
    fn unpinned_eviction_still_writes_back_dirty_frames() {
        let (mut p, f) = pool(1);
        p.allocate_page(f);
        p.allocate_page(f);
        let mut page = vec![0u8; PAGE_SIZE];
        page[9] = 99;
        p.write_page(f, 0, &page);
        let (_, phys) = p.pin(f, 0);
        p.unpin(phys);
        p.reset_stats();
        // Eviction by loading page 1: the previously pinned, now unpinned
        // dirty frame must be written back, not dropped.
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 1, &mut buf);
        assert_eq!(p.stats().writes, 1);
        p.read_page(f, 0, &mut buf);
        assert_eq!(buf[9], 99);
    }
}
