//! LRU buffer pool over the simulated disk.
//!
//! The pool is deliberately small by default (32 KiB — the paper's §5
//! setting: "we set up the database cache to the minimum (32K)"), so that
//! query evaluation is I/O-bound and the miss counters approximate the true
//! disk page accesses an index incurs.

use crate::cost::IoCostModel;
use crate::disk::{Disk, FileId, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use std::collections::HashMap;

/// A cached page frame.
struct Frame {
    phys: u64,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// Logical timestamp of last use, for LRU eviction.
    last_used: u64,
    /// Touched more than once since load. Eviction prefers cold frames, so
    /// a long sequential scan (every page touched once) cannot flush hot
    /// pages such as B-tree roots — the scan-resistant "midpoint" policy
    /// real database caches (incl. Berkeley DB's priority buffers) use.
    hot: bool,
}

/// An LRU page cache with miss classification and cost accounting.
///
/// Most callers use the [`Pager`](crate::Pager) wrapper; the pool itself is
/// exposed for tests and custom configurations.
pub struct BufferPool {
    disk: Disk,
    capacity: usize,
    frames: Vec<Frame>,
    /// phys page -> frame index
    map: HashMap<u64, usize>,
    clock: u64,
    /// Physical page of the most recent *disk fetch* (not cache hit), used to
    /// classify the next miss as sequential or random.
    last_fetched: Option<u64>,
    stats: IoStats,
    cost: IoCostModel,
}

impl BufferPool {
    /// Create a pool caching at most `cache_bytes / PAGE_SIZE` pages
    /// (minimum 1).
    pub fn new(disk: Disk, cache_bytes: usize, cost: IoCostModel) -> Self {
        let capacity = (cache_bytes / PAGE_SIZE).max(1);
        BufferPool {
            disk,
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            clock: 0,
            last_fetched: None,
            stats: IoStats::default(),
            cost,
        }
    }

    /// Number of page frames the pool may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_fetched = None;
    }

    pub fn set_cost_model(&mut self, cost: IoCostModel) {
        self.cost = cost;
    }

    /// Append a zeroed page to `file` and install it in the cache as dirty
    /// (it still needs a write-back, which is charged when evicted or
    /// flushed).
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let page = self.disk.allocate_page(file);
        let phys = self.disk.phys(file, page);
        let frame = Frame {
            phys,
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: true,
            last_used: self.tick(),
            hot: false,
        };
        self.install(frame);
        page
    }

    /// Read a whole page into `buf`.
    pub fn read_page(&mut self, file: FileId, page: PageId, buf: &mut [u8]) {
        self.with_page(file, page, |data| buf.copy_from_slice(data))
    }

    /// Borrow a page's bytes without copying.
    pub fn with_page<R>(&mut self, file: FileId, page: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let idx = self.fetch(file, page);
        let tick = self.tick();
        self.frames[idx].last_used = tick;
        f(&self.frames[idx].data[..])
    }

    /// Mark a frame hot when it is touched again after its load.
    fn touch(&mut self, idx: usize) {
        let tick = self.tick();
        let frame = &mut self.frames[idx];
        frame.last_used = tick;
        frame.hot = true;
    }

    /// Overwrite a whole page.
    pub fn write_page(&mut self, file: FileId, page: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "write_page requires a full page");
        let idx = self.fetch(file, page);
        let tick = self.tick();
        let frame = &mut self.frames[idx];
        frame.data.copy_from_slice(data);
        frame.dirty = true;
        frame.last_used = tick;
    }

    /// Write every dirty frame back to disk (charging write costs) and drop
    /// all frames.
    pub fn clear_cache(&mut self) {
        let frames = std::mem::take(&mut self.frames);
        self.map.clear();
        for frame in frames {
            self.write_back(frame);
        }
        // A cleared cache also forgets the head position: the next read pays
        // a seek.
        self.last_fetched = None;
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn write_back(&mut self, frame: Frame) {
        if frame.dirty {
            self.disk.write_phys(frame.phys, &frame.data[..]);
            self.stats.writes += 1;
            self.stats.io_time += self.cost.write;
        }
    }

    /// Ensure the page is cached and return its frame index.
    fn fetch(&mut self, file: FileId, page: PageId) -> usize {
        let phys = self.disk.phys(file, page);
        if let Some(&idx) = self.map.get(&phys) {
            self.stats.hits += 1;
            self.touch(idx);
            return idx;
        }
        // Miss: classify, charge, load.
        let sequential = self.last_fetched == Some(phys.wrapping_sub(1));
        if sequential {
            self.stats.seq_misses += 1;
            self.stats.io_time += self.cost.seq_read;
        } else {
            self.stats.random_misses += 1;
            self.stats.io_time += self.cost.random_read;
        }
        self.last_fetched = Some(phys);
        let data = Box::new(*self.disk.read_phys(phys));
        let frame = Frame {
            phys,
            data,
            dirty: false,
            last_used: self.tick(),
            hot: false,
        };
        self.install(frame)
    }

    /// Install a frame, evicting the LRU frame if at capacity. Returns the
    /// frame's index.
    fn install(&mut self, frame: Frame) -> usize {
        debug_assert!(!self.map.contains_key(&frame.phys));
        if self.frames.len() < self.capacity {
            let idx = self.frames.len();
            self.map.insert(frame.phys, idx);
            self.frames.push(frame);
            return idx;
        }
        // Evict cold (touched-once) frames before hot ones, LRU within
        // each class — see `Frame::hot`. If every frame has become hot,
        // age the whole pool back to cold (CLOCK-style epoch reset) so
        // stale hot pages cannot pin the cache forever.
        if self.frames.iter().all(|fr| fr.hot) {
            for fr in &mut self.frames {
                fr.hot = false;
            }
        }
        let (idx, _) = self
            .frames
            .iter()
            .enumerate()
            .min_by_key(|(_, fr)| (fr.hot, fr.last_used))
            .expect("capacity >= 1");
        let old = std::mem::replace(&mut self.frames[idx], frame);
        self.map.remove(&old.phys);
        self.write_back(old);
        self.map.insert(self.frames[idx].phys, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pool(pages: usize) -> (BufferPool, FileId) {
        let mut disk = Disk::new();
        let f = disk.create_file();
        (
            BufferPool::new(disk, pages * PAGE_SIZE, IoCostModel::free()),
            f,
        )
    }

    #[test]
    fn hit_after_first_read() {
        let (mut p, f) = pool(4);
        p.allocate_page(f);
        p.reset_stats();
        p.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf);
        p.read_page(f, 0, &mut buf);
        assert_eq!(p.stats().misses(), 1);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (mut p, f) = pool(2);
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 0, &mut buf); // cache: {0}
        p.read_page(f, 1, &mut buf); // cache: {0,1}
        p.read_page(f, 0, &mut buf); // touch 0
        p.read_page(f, 2, &mut buf); // evicts 1
        p.read_page(f, 0, &mut buf); // hit
        p.read_page(f, 1, &mut buf); // miss again
        assert_eq!(p.stats().misses(), 4);
        assert_eq!(p.stats().hits, 2);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (mut p, f) = pool(1);
        p.allocate_page(f);
        p.allocate_page(f);
        let mut page = vec![0u8; PAGE_SIZE];
        page[5] = 55;
        p.write_page(f, 0, &page);
        // Force eviction of page 0 by touching page 1.
        let mut buf = vec![0u8; PAGE_SIZE];
        p.read_page(f, 1, &mut buf);
        p.read_page(f, 0, &mut buf);
        assert_eq!(buf[5], 55);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let (mut p, f) = pool(1);
        for _ in 0..6 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        // 0,1,2 sequential run; then jump to 5; then 4 (backwards = random).
        for pg in [0u64, 1, 2, 5, 4] {
            p.read_page(f, pg, &mut buf);
        }
        assert_eq!(p.stats().seq_misses, 2); // pages 1 and 2
        assert_eq!(p.stats().random_misses, 3); // pages 0, 5, 4
    }

    #[test]
    fn cost_model_charges_io_time() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let mut p = BufferPool::new(
            disk,
            PAGE_SIZE,
            IoCostModel {
                random_read: Duration::from_millis(8),
                seq_read: Duration::from_millis(1),
                write: Duration::ZERO,
            },
        );
        for _ in 0..3 {
            p.allocate_page(f);
        }
        p.clear_cache();
        p.reset_stats();
        let mut buf = vec![0u8; PAGE_SIZE];
        for pg in 0..3 {
            p.read_page(f, pg, &mut buf);
        }
        // 1 random + 2 sequential.
        assert_eq!(p.stats().io_time, Duration::from_millis(10));
    }

    #[test]
    fn capacity_minimum_is_one_page() {
        let disk = Disk::new();
        let p = BufferPool::new(disk, 10, IoCostModel::free());
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn writes_counted_on_clear() {
        let (mut p, f) = pool(4);
        p.allocate_page(f);
        p.reset_stats();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 1;
        p.write_page(f, 0, &page);
        p.clear_cache();
        assert_eq!(p.stats().writes, 1);
    }
}
