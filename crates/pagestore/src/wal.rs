//! A small write-ahead log for low-latency single-record ingest between
//! checkpoints.
//!
//! The shadow-paged commit ([`FileStorage::sync`](crate::FileStorage))
//! makes a *batch* durable at the cost of rewriting every dirty page plus
//! a superblock flip — far too heavy to pay per ingested record. The WAL
//! inverts the trade: one appended record, one small sequential write,
//! one fsync, and the record survives a crash. At the next checkpoint the
//! records are folded into the paged index and the log is reset.
//!
//! # On-disk format
//!
//! ```text
//! offset 0             8
//! +--------------------+--------------------------------------------+
//! | magic "OIFWAL01"   | records...                                 |
//! +--------------------+--------------------------------------------+
//!
//! record := u64 payload_len (LE) | payload | u64 fnv1a(payload) (LE)
//! ```
//!
//! Each record is framed with [`ser::Writer`](crate::ser::Writer)'s
//! length-prefix discipline and appended with a **single** `write_at`
//! call, so under the in-order crash model (see [`crate::fault`]) a
//! crashed append leaves a strictly shorter file — never a full-length
//! record with rewritten bytes. That asymmetry is what recovery leans on:
//!
//! * a record extending past end-of-file is a **torn tail** — the crash
//!   ate the append; recovery stops at the last whole record and
//!   truncates the tail away (the record was never acknowledged);
//! * a *whole* record whose checksum mismatches can only be bit rot —
//!   recovery refuses with a typed
//!   [`StorageError::ChecksumMismatch`] naming the byte offset, never a
//!   silent skip (skipping would resurface as missing committed data);
//! * an empty or sub-magic-length file is a fresh log (a crash can tear
//!   even the magic write), re-initialised on open.
//!
//! Replay idempotence is the *caller's* contract: the layer folding
//! records into an index must skip records already covered by the
//! checkpoint it recovered (the service keys this off the shard's
//! persisted max record id), because a crash between "checkpoint commit"
//! and "log reset" leaves both holding the same records.

use crate::raw::RawFile;
use crate::ser::Writer;
use crate::storage::{fnv1a, StorageError};

/// Magic stamped at offset 0 of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"OIFWAL01";

/// Per-log counters, harvested by the owner and usually folded into the
/// pool's [`IoStats`](crate::IoStats) via
/// [`Pager::note_wal`](crate::Pager::note_wal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since the last [`Wal::take_stats`].
    pub appends: u64,
    /// Payload bytes appended (excluding the 16 framing bytes/record).
    pub bytes: u64,
    /// `sync` barriers issued against the log's file.
    pub fsyncs: u64,
}

/// An append-only, checksummed, torn-tail-tolerant log over any
/// [`RawFile`]. See the module docs for the format and recovery rules.
pub struct Wal {
    file: Box<dyn RawFile>,
    /// Offset one past the last whole, checksum-valid record.
    end: u64,
    stats: WalStats,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("end", &self.end)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Wal {
    /// Start a fresh log on `file`, writing the magic header. Any prior
    /// contents are truncated away.
    pub fn create(mut file: Box<dyn RawFile>) -> Result<Self, StorageError> {
        file.set_len(0)?;
        file.write_at(0, &WAL_MAGIC)?;
        Ok(Wal {
            file,
            end: WAL_MAGIC.len() as u64,
            stats: WalStats::default(),
        })
    }

    /// Open an existing log (possibly a crash survivor) and replay it:
    /// returns the log positioned after its last whole record, plus every
    /// record payload in append order. The torn tail, if any, is
    /// truncated away so later appends never interleave with dead bytes.
    pub fn open(mut file: Box<dyn RawFile>) -> Result<(Self, Vec<Vec<u8>>), StorageError> {
        let len = file.byte_len()?;
        if len < WAL_MAGIC.len() as u64 {
            // Fresh file, or a crash tore the magic write itself: nothing
            // was ever acknowledged from this log, so re-initialise.
            let wal = Wal::create(file)?;
            return Ok((wal, Vec::new()));
        }
        let mut image = vec![0u8; usize::try_from(len).expect("wal fits memory")];
        file.read_at(0, &mut image)?;
        if image[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StorageError::ChecksumMismatch {
                what: "wal magic header".into(),
                expected: fnv1a(&WAL_MAGIC),
                actual: fnv1a(&image[..WAL_MAGIC.len()]),
            });
        }

        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        // Header: u64 payload length. Fewer than 8 bytes left is a torn
        // header — the tail record never finished.
        while let Some(header) = image.get(pos..pos + 8) {
            let plen = u64::from_le_bytes(header.try_into().expect("8-byte slice"));
            let Ok(plen) = usize::try_from(plen) else {
                break; // absurd length ⇒ a torn/garbage tail header
            };
            let Some(rec_end) = pos
                .checked_add(8)
                .and_then(|p| p.checked_add(plen))
                .and_then(|p| p.checked_add(8))
            else {
                break;
            };
            if rec_end > image.len() {
                break; // record extends past EOF: torn tail
            }
            let payload = &image[pos + 8..pos + 8 + plen];
            let stored = u64::from_le_bytes(
                image[rec_end - 8..rec_end]
                    .try_into()
                    .expect("8-byte slice"),
            );
            let actual = fnv1a(payload);
            if stored != actual {
                // The record is whole — a crash cannot produce this (an
                // append is one write), so it is committed data that
                // rotted. Refuse loudly, naming where.
                return Err(StorageError::ChecksumMismatch {
                    what: format!("wal record at byte {pos}"),
                    expected: stored,
                    actual,
                });
            }
            records.push(payload.to_vec());
            pos = rec_end;
        }

        if (pos as u64) < len {
            file.set_len(pos as u64)?;
        }
        Ok((
            Wal {
                file,
                end: pos as u64,
                stats: WalStats::default(),
            },
            records,
        ))
    }

    /// Append one record. The frame (length prefix + payload + checksum)
    /// goes down in a single `write_at`, so a crash mid-append can only
    /// shorten the file — see the module docs. **Not durable** until
    /// [`Wal::sync`] returns.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        let mut w = Writer::new();
        w.bytes(payload);
        w.u64(fnv1a(payload));
        let frame = w.into_bytes();
        self.file.write_at(self.end, &frame)?;
        self.end += frame.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes += payload.len() as u64;
        Ok(())
    }

    /// Durability barrier: every appended record survives a crash after
    /// this returns.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_all()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Drop every record — called *after* a checkpoint committed them
    /// into the paged index. Crash-ordering note: if the process dies
    /// between the checkpoint's superblock flip and this reset, the next
    /// open replays records the checkpoint already holds; the caller's
    /// replay filter (max record id) makes that harmless.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.end = WAL_MAGIC.len() as u64;
        self.file.sync_all()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Bytes occupied by the magic plus every whole record.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.end == WAL_MAGIC.len() as u64
    }

    /// Harvest and reset the per-log counters (append/byte/fsync deltas
    /// since the last harvest).
    pub fn take_stats(&mut self) -> WalStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::MemFile;

    fn reopen(wal: Wal) -> (Wal, Vec<Vec<u8>>) {
        let Wal { mut file, .. } = wal;
        let len = file.byte_len().unwrap();
        let mut image = vec![0u8; len as usize];
        file.read_at(0, &mut image).unwrap();
        Wal::open(Box::new(MemFile::from_bytes(image))).unwrap()
    }

    #[test]
    fn append_sync_reopen_replays_in_order() {
        let mut wal = Wal::create(Box::new(MemFile::new())).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        let stats = wal.take_stats();
        assert_eq!((stats.appends, stats.bytes, stats.fsyncs), (2, 6, 1));
        let (wal, records) = reopen(wal);
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!wal.is_empty());
    }

    #[test]
    fn reset_drops_all_records() {
        let mut wal = Wal::create(Box::new(MemFile::new())).unwrap();
        wal.append(b"gone").unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        let (_, records) = reopen(wal);
        assert!(records.is_empty());
    }

    #[test]
    fn empty_and_zero_length_files_open_clean() {
        let (wal, records) = Wal::open(Box::new(MemFile::new())).unwrap();
        assert!(records.is_empty() && wal.is_empty());
        // A torn magic write (shorter than 8 bytes) is also "fresh".
        let (wal, records) = Wal::open(Box::new(MemFile::from_bytes(b"OIF".to_vec()))).unwrap();
        assert!(records.is_empty() && wal.is_empty());
    }

    #[test]
    fn torn_tail_stops_at_last_whole_record_and_truncates() {
        let mut wal = Wal::create(Box::new(MemFile::new())).unwrap();
        wal.append(b"whole").unwrap();
        wal.append(b"torn-away").unwrap();
        let Wal { mut file, end, .. } = wal;
        let mut image = vec![0u8; end as usize];
        file.read_at(0, &mut image).unwrap();
        // Cut the tail record anywhere inside its frame: recovery must
        // stop exactly after "whole" and truncate the stub.
        let first_end = 8 + (8 + 5 + 8);
        for cut in first_end + 1..image.len() {
            let (wal, records) =
                Wal::open(Box::new(MemFile::from_bytes(image[..cut].to_vec()))).unwrap();
            assert_eq!(records, vec![b"whole".to_vec()], "cut at {cut}");
            assert_eq!(wal.len_bytes(), first_end as u64, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bit_is_a_typed_corruption_naming_the_offset() {
        let mut wal = Wal::create(Box::new(MemFile::new())).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        let Wal { mut file, end, .. } = wal;
        let mut image = vec![0u8; end as usize];
        file.read_at(0, &mut image).unwrap();
        // Rot one payload bit of the *first* record (offset 8 is its
        // header, 16 its payload).
        image[17] ^= 0x40;
        let err = Wal::open(Box::new(MemFile::from_bytes(image))).unwrap_err();
        match &err {
            StorageError::ChecksumMismatch { what, .. } => {
                assert_eq!(what, "wal record at byte 8", "got: {err}");
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        assert!(err.is_corruption());
    }

    #[test]
    fn bad_magic_is_refused() {
        let err = Wal::open(Box::new(MemFile::from_bytes(b"NOTAWAL0".to_vec()))).unwrap_err();
        assert!(err.is_corruption(), "got: {err}");
    }
}
