//! Fault injection for the durable backend: simulated crashes at every
//! physical I/O operation.
//!
//! The crash-recovery harness needs to answer one question exhaustively:
//! *if the process dies at an arbitrary instruction boundary, does the
//! storage file still open to a fully consistent committed state?* The
//! machinery here makes that testable:
//!
//! * [`FaultFile`] — a [`RawFile`] over an in-memory image that keeps
//!   **two** copies of the file: the *memory* image (every write applied —
//!   what the running process and the OS page cache would observe) and the
//!   *disk* image (only the operations before a scheduled crash point
//!   applied — what survives the crash). Reads serve the memory image, so
//!   the workload under test runs to completion obliviously; the harness
//!   then harvests the frozen disk image and replays recovery on it.
//! * [`FaultConfig`] — where to crash: after the first `crash_after`
//!   mutating operations (`write_at` / `set_len` / `sync_all`), with the
//!   in-flight operation optionally *torn* so that only its first
//!   `tear_bytes` bytes reach the disk image.
//! * [`FaultHandle`] — the harness's view: the number of mutating
//!   operations observed so far, whether the crash point has passed, and
//!   the two images. With no crash configured the disk image equals the
//!   memory image at every point, so `disk_image()` doubles as a
//!   "crash *right now*" snapshot.
//! * [`FaultStorage`] — a [`Storage`] wrapper pairing any backend with the
//!   handle; [`FaultStorage::create`] builds the usual stack (a
//!   [`FileStorage`] over a [`FaultFile`]) in one call.
//!
//! The model applies operations to the disk image *in order* — it does not
//! simulate the request reordering a real disk scheduler may perform.
//! [`FileStorage`](crate::FileStorage)'s commit protocol places `sync_all`
//! barriers exactly where reordering would be fatal (before and after the
//! superblock flip), so in-order prefixes are precisely the states those
//! barriers guarantee on real hardware.

use crate::disk::{FileId, PageId, PAGE_SIZE};
use crate::raw::{read_image_at, write_image_at, RawFile};
use crate::storage::{PhysPage, Storage, StorageError};
use crate::FileStorage;
use std::io;
use std::sync::{Arc, Mutex};

/// Crash and fault schedule for a [`FaultFile`].
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Crash after this many mutating operations have fully reached the
    /// disk image: operation `crash_after` is the in-flight one (torn or
    /// dropped), every later operation is dropped. `None` = never crash.
    pub crash_after: Option<u64>,
    /// How many leading bytes of the in-flight *write* still reach the
    /// disk image (a torn sector). 0 = the in-flight operation is dropped
    /// whole. In-flight `set_len` / `sync_all` are always dropped whole —
    /// there is no meaningful "half a truncation".
    pub tear_bytes: usize,
    /// Read-operation indices (see [`FaultHandle::read_ops`]) that fail
    /// with an injected *transient* error ([`io::ErrorKind::Interrupted`])
    /// instead of returning data. The same read re-issued — the next read
    /// index — succeeds, which is exactly what a retry does.
    pub transient_reads: Vec<u64>,
    /// Mutating-operation indices (same counter as `crash_after`) that
    /// fail transiently: the attempt consumes its index but reaches
    /// *neither* image, and the call returns [`io::ErrorKind::Interrupted`].
    pub transient_writes: Vec<u64>,
    /// Read-operation indices that fail with a *short read*
    /// ([`io::ErrorKind::UnexpectedEof`]) — the medium returned fewer
    /// bytes than asked. Classified transient by the retry policy.
    pub short_reads: Vec<u64>,
    /// When non-zero, roughly one in `transient_one_in` reads fails
    /// transiently, chosen by a deterministic hash of
    /// (`seed`, read index) — a seeded flaky medium for sweep tests.
    pub transient_one_in: u64,
    /// Seed for the `transient_one_in` hash (irrelevant when that is 0).
    pub seed: u64,
}

impl FaultConfig {
    /// Crash after `ops` fully-applied operations, dropping the rest.
    pub fn crash_after(ops: u64) -> Self {
        FaultConfig {
            crash_after: Some(ops),
            ..FaultConfig::default()
        }
    }

    /// Crash after `ops` fully-applied operations, tearing the in-flight
    /// write at byte `tear_bytes`.
    pub fn torn(ops: u64, tear_bytes: usize) -> Self {
        FaultConfig {
            crash_after: Some(ops),
            tear_bytes,
            ..FaultConfig::default()
        }
    }

    /// A seeded flaky medium: roughly one in `one_in` reads fails with a
    /// transient error, deterministically per (`seed`, read index).
    pub fn flaky_reads(seed: u64, one_in: u64) -> Self {
        FaultConfig {
            transient_one_in: one_in,
            seed,
            ..FaultConfig::default()
        }
    }

    /// True when the deterministic flaky-read hash fires for `read_op`.
    fn flaky_fires(&self, read_op: u64) -> bool {
        if self.transient_one_in == 0 {
            return false;
        }
        // SplitMix64 finalizer over (seed ^ index): stateless, identical
        // across runs for the same seed, and well-mixed enough that
        // `% one_in` sees no stride artefacts from sequential indices.
        let mut h = self.seed ^ read_op;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        h.is_multiple_of(self.transient_one_in)
    }
}

/// The shared side of the fault model: one op clock plus one schedule.
///
/// Kept separate from the per-file byte images so that *several* files —
/// a paged store and its write-ahead log — can share a single crash
/// schedule: the commit pipeline interleaves physical ops across both
/// files, and "crash after op k" must mean the k-th op *of the pipeline*,
/// whichever file it happened to land on. [`FaultDomain`] mints such
/// clock-sharing files; the single-file constructors give each file a
/// private clock, which is the degenerate one-file domain.
struct ClockState {
    ops: u64,
    read_ops: u64,
    cfg: FaultConfig,
}

/// What the schedule decided for one mutating operation.
enum MutateOutcome {
    /// Before the crash point: reaches both images.
    Applied,
    /// The in-flight op: the disk image gets only this byte prefix.
    Torn(usize),
    /// After the crash point: memory image only.
    Dropped,
}

impl ClockState {
    /// Count one mutating operation and decide its fate. A scheduled
    /// transient failure consumes the op index but reaches neither image.
    fn gate_mutate(&mut self) -> io::Result<MutateOutcome> {
        let op = self.ops;
        self.ops += 1;
        if self.cfg.transient_writes.contains(&op) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault on write op {op}"),
            ));
        }
        Ok(match self.cfg.crash_after {
            None => MutateOutcome::Applied,
            Some(k) if op < k => MutateOutcome::Applied,
            Some(k) if op == k && self.cfg.tear_bytes > 0 => {
                MutateOutcome::Torn(self.cfg.tear_bytes)
            }
            Some(_) => MutateOutcome::Dropped,
        })
    }

    /// Gate one read: counts it and reports any scheduled or seeded fault
    /// for its index. `Ok(())` means the read may serve the memory image.
    fn gate_read(&mut self) -> io::Result<()> {
        let op = self.read_ops;
        self.read_ops += 1;
        if self.cfg.transient_reads.contains(&op) || self.cfg.flaky_fires(op) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault on read op {op}"),
            ));
        }
        if self.cfg.short_reads.contains(&op) {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("injected short read on read op {op}"),
            ));
        }
        Ok(())
    }
}

/// One file's dual byte images (see the module docs).
struct ImageState {
    mem: Vec<u8>,
    disk: Vec<u8>,
}

fn lock_clock(clock: &Arc<Mutex<ClockState>>) -> std::sync::MutexGuard<'_, ClockState> {
    clock.lock().expect("fault-clock lock poisoned")
}

fn lock_images(images: &Arc<Mutex<ImageState>>) -> std::sync::MutexGuard<'_, ImageState> {
    images.lock().expect("fault-image lock poisoned")
}

/// A shared crash schedule spanning several [`FaultFile`]s.
///
/// The commit pipeline's physical I/O interleaves a paged store with a
/// write-ahead log; an exhaustive sweep must be able to freeze the whole
/// *pipeline* at its k-th op regardless of which file that op hit. All
/// files minted from one domain share its op clock and [`FaultConfig`],
/// while keeping their own byte images.
#[derive(Clone)]
pub struct FaultDomain {
    clock: Arc<Mutex<ClockState>>,
}

impl FaultDomain {
    /// A fresh domain with the given (shared) schedule.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultDomain {
            clock: Arc::new(Mutex::new(ClockState {
                ops: 0,
                read_ops: 0,
                cfg,
            })),
        }
    }

    /// Mint an empty file on this domain's clock.
    pub fn file(&self) -> (FaultFile, FaultHandle) {
        self.file_from_image(Vec::new())
    }

    /// Mint a file starting from a harvested image on this domain's
    /// clock (e.g. to crash-test a recovery that touches both files).
    pub fn file_from_image(&self, bytes: Vec<u8>) -> (FaultFile, FaultHandle) {
        let images = Arc::new(Mutex::new(ImageState {
            mem: bytes.clone(),
            disk: bytes,
        }));
        (
            FaultFile {
                clock: self.clock.clone(),
                images: images.clone(),
            },
            FaultHandle {
                clock: self.clock.clone(),
                images,
            },
        )
    }

    /// Mutating operations observed across every file of the domain.
    pub fn ops(&self) -> u64 {
        lock_clock(&self.clock).ops
    }

    /// Read operations observed across every file of the domain.
    pub fn read_ops(&self) -> u64 {
        lock_clock(&self.clock).read_ops
    }

    /// True once the crash point has passed on any file of the domain.
    pub fn crashed(&self) -> bool {
        let s = lock_clock(&self.clock);
        s.cfg.crash_after.is_some_and(|k| s.ops > k)
    }

    /// Replace the shared fault schedule. Counters are *not* reset.
    pub fn set_fault_config(&self, cfg: FaultConfig) {
        lock_clock(&self.clock).cfg = cfg;
    }
}

/// Shared harness view of one [`FaultFile`] (cheaply clonable): its op
/// clock — possibly shared domain-wide — and its two byte images.
#[derive(Clone)]
pub struct FaultHandle {
    clock: Arc<Mutex<ClockState>>,
    images: Arc<Mutex<ImageState>>,
}

impl FaultHandle {
    /// Mutating operations observed so far on this file's clock
    /// (domain-wide when the file came from a [`FaultDomain`]), including
    /// dropped ones.
    pub fn ops(&self) -> u64 {
        lock_clock(&self.clock).ops
    }

    /// Read operations observed so far (including failed ones). Reads are
    /// counted on their own axis so scheduling read faults never perturbs
    /// the mutating-op indices `crash_after` keys on.
    pub fn read_ops(&self) -> u64 {
        lock_clock(&self.clock).read_ops
    }

    /// True once the crash point has passed (some operation was dropped
    /// or torn).
    pub fn crashed(&self) -> bool {
        let s = lock_clock(&self.clock);
        s.cfg.crash_after.is_some_and(|k| s.ops > k)
    }

    /// The bytes that survive the crash — what a post-crash process would
    /// find on disk. With no crash configured this is simply the current
    /// file contents, i.e. a "crash now" snapshot.
    pub fn disk_image(&self) -> Vec<u8> {
        lock_images(&self.images).disk.clone()
    }

    /// The bytes the running process observes (every write applied).
    pub fn mem_image(&self) -> Vec<u8> {
        lock_images(&self.images).mem.clone()
    }

    /// Replace the fault schedule mid-run — how a sweep clears injected
    /// faults ("the medium healed") or arms a new round without rebuilding
    /// the whole storage stack. Operation counters are *not* reset. On a
    /// domain-shared clock this swaps the schedule for every file.
    pub fn set_fault_config(&self, cfg: FaultConfig) {
        lock_clock(&self.clock).cfg = cfg;
    }

    /// Flip one bit of the backing file in **both** images — committed,
    /// silent corruption (bit rot), not an in-flight fault. The next
    /// checksummed read of the affected page reports
    /// [`StorageError::ChecksumMismatch`]. No-op past end of file.
    pub fn flip_bit(&self, offset: u64, bit: u8) {
        let mut s = lock_images(&self.images);
        let Ok(i) = usize::try_from(offset) else {
            return;
        };
        let mask = 1u8 << (bit & 7);
        if let Some(b) = s.mem.get_mut(i) {
            *b ^= mask;
        }
        if let Some(b) = s.disk.get_mut(i) {
            *b ^= mask;
        }
    }
}

/// A [`RawFile`] with crash injection. See the module docs.
pub struct FaultFile {
    clock: Arc<Mutex<ClockState>>,
    images: Arc<Mutex<ImageState>>,
}

impl FaultFile {
    /// An empty fault file with the given (private) crash schedule.
    pub fn new(cfg: FaultConfig) -> (Self, FaultHandle) {
        Self::from_image(Vec::new(), cfg)
    }

    /// A fault file whose disk and memory images both start as `bytes`
    /// (e.g. a previously harvested crash image, to inject a second
    /// fault into the recovery path itself).
    pub fn from_image(bytes: Vec<u8>, cfg: FaultConfig) -> (Self, FaultHandle) {
        FaultDomain::new(cfg).file_from_image(bytes)
    }

    /// Gate one mutating operation through the clock, then apply it to
    /// the images as decided. Lock order: clock, then images.
    fn mutate(&mut self, apply: impl Fn(&mut Vec<u8>, Option<usize>)) -> io::Result<()> {
        let outcome = lock_clock(&self.clock).gate_mutate()?;
        let mut images = lock_images(&self.images);
        apply(&mut images.mem, None);
        match outcome {
            MutateOutcome::Applied => apply(&mut images.disk, None),
            MutateOutcome::Torn(tear) => apply(&mut images.disk, Some(tear)),
            MutateOutcome::Dropped => {}
        }
        Ok(())
    }
}

impl RawFile for FaultFile {
    fn read_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        // Reads are not crash points: they do not change what is on disk,
        // so a crash "before a read" is identical to a crash before the
        // next mutating operation. They have their own fault axis, though
        // — transient errors and short reads — gated per read index.
        lock_clock(&self.clock).gate_read()?;
        let images = lock_images(&self.images);
        read_image_at(&images.mem, offset, out)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.mutate(|image, tear| {
            let n = tear.map_or(data.len(), |t| t.min(data.len()));
            write_image_at(image, offset, &data[..n]);
        })
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let len = usize::try_from(len).expect("length fits memory");
        self.mutate(|image, tear| {
            if tear.is_none() {
                image.resize(len, 0);
            }
        })
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(lock_images(&self.images).mem.len() as u64)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        // A barrier mutates nothing, but it is still a scheduling point
        // the sweep enumerates (and dropping it is how "the crash ate the
        // fsync" is modelled).
        self.mutate(|_, _| {})
    }
}

/// A [`Storage`] wrapper pairing a backend with the fault handle driving
/// (and observing) its physical I/O.
///
/// The interesting constructor is [`FaultStorage::create`], which builds
/// the full durable stack — a [`FileStorage`] over a [`FaultFile`] — so a
/// buffer pool / `Pager` can run an ordinary workload while the harness
/// schedules crashes underneath it. [`FaultStorage::wrap`] pairs an
/// already-built backend with a handle (e.g. a storage opened from a
/// previously frozen image, to crash the post-recovery sync too).
pub struct FaultStorage {
    inner: Box<dyn Storage>,
    handle: FaultHandle,
}

impl FaultStorage {
    /// Create a fresh shadow-paged [`FileStorage`] over a [`FaultFile`]
    /// with the given crash schedule.
    pub fn create(cfg: FaultConfig) -> Result<(Self, FaultHandle), StorageError> {
        let (file, handle) = FaultFile::new(cfg);
        let inner = FileStorage::create_on(Box::new(file))?;
        Ok((
            FaultStorage {
                inner: Box::new(inner),
                handle: handle.clone(),
            },
            handle,
        ))
    }

    /// Reopen a frozen crash image with a fresh crash schedule (so the
    /// recovery path itself can be crash-tested).
    pub fn open_image(
        image: Vec<u8>,
        cfg: FaultConfig,
    ) -> Result<(Self, FaultHandle), StorageError> {
        let (file, handle) = FaultFile::from_image(image, cfg);
        let inner = FileStorage::open_on(Box::new(file))?;
        Ok((
            FaultStorage {
                inner: Box::new(inner),
                handle: handle.clone(),
            },
            handle,
        ))
    }

    /// Pair any backend with an existing fault handle.
    pub fn wrap(storage: impl Storage + 'static, handle: FaultHandle) -> Self {
        FaultStorage {
            inner: Box::new(storage),
            handle,
        }
    }

    pub fn handle(&self) -> FaultHandle {
        self.handle.clone()
    }
}

impl Storage for FaultStorage {
    fn create_file(&mut self) -> FileId {
        self.inner.create_file()
    }

    fn file_count(&self) -> usize {
        self.inner.file_count()
    }

    fn file_len(&self, file: FileId) -> u64 {
        self.inner.file_len(file)
    }

    fn total_pages(&self) -> u64 {
        self.inner.total_pages()
    }

    fn allocate_page(&mut self, file: FileId) -> PageId {
        self.inner.allocate_page(file)
    }

    fn phys(&self, file: FileId, page: PageId) -> PhysPage {
        self.inner.phys(file, page)
    }

    fn read_phys(&mut self, phys: PhysPage, out: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        self.inner.read_phys(phys, out)
    }

    fn write_phys(&mut self, phys: PhysPage, data: &[u8]) -> Result<(), StorageError> {
        self.inner.write_phys(phys, data)
    }

    fn put_catalog(&mut self, key: &str, bytes: &[u8]) {
        self.inner.put_catalog(key, bytes)
    }

    fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.get_catalog(key)
    }

    fn catalog_keys(&self) -> Vec<String> {
        self.inner.catalog_keys()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.inner.sync()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_crash_keeps_images_identical() {
        let (mut f, h) = FaultFile::new(FaultConfig::default());
        f.write_at(0, b"hello").unwrap();
        f.sync_all().unwrap();
        f.write_at(5, b" world").unwrap();
        assert_eq!(h.ops(), 3);
        assert!(!h.crashed());
        assert_eq!(h.disk_image(), h.mem_image());
        assert_eq!(h.disk_image(), b"hello world");
    }

    #[test]
    fn domain_shares_one_crash_schedule_across_files() {
        let domain = FaultDomain::new(FaultConfig::crash_after(2));
        let (mut a, ha) = domain.file();
        let (mut b, hb) = domain.file();
        a.write_at(0, b"A0").unwrap(); // op 0: applied
        b.write_at(0, b"B0").unwrap(); // op 1: applied
        a.write_at(2, b"A1").unwrap(); // op 2: the pipeline's in-flight op
        b.write_at(2, b"B1").unwrap(); // op 3: dropped
        assert_eq!(domain.ops(), 4, "both files advance one shared clock");
        assert!(domain.crashed() && ha.crashed() && hb.crashed());
        assert_eq!(ha.disk_image(), b"A0");
        assert_eq!(hb.disk_image(), b"B0");
        assert_eq!(ha.mem_image(), b"A0A1");
        assert_eq!(hb.mem_image(), b"B0B1");
    }

    #[test]
    fn crash_freezes_the_disk_image_but_not_memory() {
        let (mut f, h) = FaultFile::new(FaultConfig::crash_after(1));
        f.write_at(0, b"aaaa").unwrap(); // op 0: applied
        f.write_at(0, b"bbbb").unwrap(); // op 1: in-flight, dropped
        f.write_at(4, b"cccc").unwrap(); // op 2: dropped
        assert!(h.crashed());
        assert_eq!(h.disk_image(), b"aaaa");
        assert_eq!(h.mem_image(), b"bbbbcccc");
        // The process keeps reading its own (memory) writes.
        let mut out = [0u8; 8];
        f.read_at(0, &mut out).unwrap();
        assert_eq!(&out, b"bbbbcccc");
    }

    #[test]
    fn torn_write_applies_a_prefix() {
        let (mut f, h) = FaultFile::new(FaultConfig::torn(1, 2));
        f.write_at(0, b"xxxx").unwrap(); // applied
        f.write_at(0, b"YYYY").unwrap(); // torn after 2 bytes
        assert_eq!(h.disk_image(), b"YYxx");
        assert_eq!(h.mem_image(), b"YYYY");
    }

    #[test]
    fn torn_set_len_is_dropped_whole() {
        let (mut f, h) = FaultFile::new(FaultConfig::torn(1, 2));
        f.write_at(0, b"xxxx").unwrap();
        f.set_len(1).unwrap(); // in-flight: dropped, not "partially truncated"
        assert_eq!(h.disk_image(), b"xxxx");
        assert_eq!(h.mem_image(), b"x");
    }

    #[test]
    fn transient_read_fails_once_then_succeeds() {
        let (mut f, h) = FaultFile::new(FaultConfig {
            transient_reads: vec![1],
            ..FaultConfig::default()
        });
        f.write_at(0, b"data").unwrap();
        let mut out = [0u8; 4];
        f.read_at(0, &mut out).unwrap(); // read op 0: fine
        let err = f.read_at(0, &mut out).unwrap_err(); // read op 1: injected
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(err.to_string().contains("read op 1"), "got: {err}");
        f.read_at(0, &mut out).unwrap(); // the retry (read op 2) succeeds
        assert_eq!(&out, b"data");
        assert_eq!(h.read_ops(), 3);
        assert_eq!(h.ops(), 1, "reads must not consume mutating-op indices");
    }

    #[test]
    fn short_read_is_classified_transient() {
        let (mut f, _h) = FaultFile::new(FaultConfig {
            short_reads: vec![0],
            ..FaultConfig::default()
        });
        f.write_at(0, b"data").unwrap();
        let mut out = [0u8; 4];
        let err = f.read_at(0, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(StorageError::Io(err).is_transient());
    }

    #[test]
    fn transient_write_reaches_neither_image_but_consumes_its_index() {
        let (mut f, h) = FaultFile::new(FaultConfig {
            transient_writes: vec![1],
            ..FaultConfig::default()
        });
        f.write_at(0, b"aaaa").unwrap(); // op 0
        let err = f.write_at(0, b"bbbb").unwrap_err(); // op 1: injected
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(h.mem_image(), b"aaaa", "failed write must not apply");
        assert_eq!(h.disk_image(), b"aaaa");
        f.write_at(0, b"cccc").unwrap(); // op 2: the retry lands
        assert_eq!(h.mem_image(), b"cccc");
        assert_eq!(h.ops(), 3);
    }

    #[test]
    fn flaky_reads_are_deterministic_per_seed() {
        let cfg = FaultConfig::flaky_reads(42, 3);
        let fired: Vec<u64> = (0..64).filter(|&i| cfg.flaky_fires(i)).collect();
        assert!(!fired.is_empty(), "one-in-3 must fire within 64 reads");
        assert_eq!(
            fired,
            (0..64)
                .filter(|&i| FaultConfig::flaky_reads(42, 3).flaky_fires(i))
                .collect::<Vec<_>>(),
            "same seed, same schedule"
        );
        let other: Vec<u64> = (0..64)
            .filter(|&i| FaultConfig::flaky_reads(7, 3).flaky_fires(i))
            .collect();
        assert_ne!(fired, other, "different seeds differ");
    }

    #[test]
    fn set_fault_config_clears_faults_mid_run() {
        let (mut f, h) = FaultFile::new(FaultConfig::flaky_reads(1, 1)); // every read fails
        f.write_at(0, b"data").unwrap();
        let mut out = [0u8; 4];
        assert!(f.read_at(0, &mut out).is_err());
        h.set_fault_config(FaultConfig::default()); // the medium heals
        f.read_at(0, &mut out).unwrap();
        assert_eq!(&out, b"data");
    }

    #[test]
    fn flip_bit_turns_a_committed_page_into_a_checksum_mismatch() {
        let (mut storage, h) = FaultStorage::create(FaultConfig::default()).unwrap();
        let f = storage.create_file();
        storage.allocate_page(f);
        storage.write_phys(0, &[9u8; PAGE_SIZE]).unwrap();
        storage.sync().unwrap();
        // Locate the committed slot of phys page 0 from the frozen image
        // and rot one payload bit in place.
        let layout = FileStorage::layout_image(&h.disk_image()).unwrap();
        let slot = layout.pages[0].expect("page 0 is committed");
        h.flip_bit(slot + 100, 0);
        let mut out = [0u8; PAGE_SIZE];
        let err = storage.read_phys(0, &mut out).unwrap_err();
        assert!(err.is_corruption(), "got: {err}");
    }

    #[test]
    fn fault_storage_full_stack_round_trips_without_crash() {
        let (mut storage, h) = FaultStorage::create(FaultConfig::default()).unwrap();
        let f = storage.create_file();
        storage.allocate_page(f);
        storage.write_phys(0, &[9u8; PAGE_SIZE]).unwrap();
        storage.put_catalog("k", b"v");
        storage.sync().unwrap();
        let mut reopened = FileStorage::open_image(h.disk_image()).unwrap();
        assert_eq!(reopened.get_catalog("k").as_deref(), Some(&b"v"[..]));
        let mut out = [0u8; PAGE_SIZE];
        reopened.read_phys(0, &mut out).unwrap();
        assert_eq!(out[0], 9);
    }
}
