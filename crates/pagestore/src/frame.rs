//! Frame slots: stable page buffers with per-frame atomic latches.
//!
//! A [`FrameSlot`] is one cached page's home: a heap-allocated `PAGE_SIZE`
//! buffer plus the atomic metadata that lets readers latch it without any
//! pool-wide lock —
//!
//! * `pin` — the count of outstanding readers ([`PageGuard`](crate::PageGuard)s
//!   and transient `with_page` borrows). A frame with `pin > 0` is exempt
//!   from eviction, from `clear_cache`, and from `write_page` (which
//!   panics); its buffer is therefore immutable and stable for as long as
//!   the pin is held, which is what makes `&[u8]` views of the page — and
//!   the guards and cursors built on them — safely `Send`.
//! * `version` — bumped every time the slot is recycled for a different
//!   page; debug assertions use it to catch stale-slot bugs.
//! * `phys` — the physical page currently held, for LRU touch bookkeeping
//!   and diagnostics.
//! * `content` / `latch` — the optimistic-lock-coupling surface for pools
//!   running the concurrent write path (`set_concurrent_writes(true)`).
//!   `content` is a seqlock word over the page *bytes*: writers hold the
//!   frame `latch` exclusively and bump it to odd before mutating and back
//!   to even after, so an optimistic reader can copy the page without any
//!   lock and discard the copy if the word moved (or was odd). Readers
//!   that keep losing the race fall back to the blocking shared `latch`,
//!   which also keeps the protocol finite under the loom model checker
//!   (an unbounded spin would be an unbounded schedule tree). Pools that
//!   never enable concurrent writes never touch either field, so the
//!   default single-writer behaviour — and the paper's page-access
//!   counts — are bit-for-bit unchanged.
//!
//! Slots are shared via `Arc`: the buffer pool's mapping shards, its
//! eviction bookkeeping and every live guard each hold a reference, so a
//! pinned frame's buffer stays valid even if the pool itself is dropped.
//! The pin protocol is the per-frame latch the pool's concurrency rests
//! on: readers increment `pin` while holding their mapping shard's read
//! latch, the evictor re-checks `pin == 0` while holding the same shard's
//! write latch, so a frame observed unpinned under the write latch can
//! have no reader about to materialise a view of it.

use crate::disk::PAGE_SIZE;
use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use crate::sync::RwLock;
use std::ptr::NonNull;
use std::sync::Arc;

/// Optimistic snapshot attempts before a reader falls back to the blocking
/// shared latch. Each attempt is two atomic loads plus a page copy; under
/// the model checker the bound keeps the schedule tree finite.
pub(crate) const OPTIMISTIC_SNAPSHOT_RETRIES: usize = 8;

/// One cached page frame. See the module docs for the latch protocol.
pub(crate) struct FrameSlot {
    /// Physical page currently cached in this slot.
    phys: AtomicU64,
    /// Recycle counter (diagnostics / debug assertions).
    version: AtomicU64,
    /// Outstanding reader pins — the per-frame latch.
    pin: AtomicU32,
    /// Seqlock over the page bytes for the concurrent write path: odd
    /// while a latched writer is mutating, bumped again (even) when it is
    /// done. Untouched by the default single-writer path.
    content: AtomicU64,
    /// Frame write latch for the concurrent write path: writers hold it
    /// exclusively across a mutation; readers take it shared only as the
    /// fallback when optimistic snapshots keep failing.
    latch: RwLock<()>,
    /// Stable heap allocation holding the page bytes; freed in `Drop`.
    data: NonNull<[u8; PAGE_SIZE]>,
}

// SAFETY: the raw buffer is exclusively managed through the pin protocol —
// shared `&[u8]` views exist only while `pin > 0` (during which the pool
// never writes or recycles the buffer), and mutation happens only with
// `pin == 0` under the pool's policy lock plus the owning shard's write
// latch, or (concurrent write path) under the frame's exclusive `latch`
// with the `content` seqlock odd, where readers go through validated
// snapshots instead of `&[u8]` views. Nothing is tied to a particular
// thread.
unsafe impl Send for FrameSlot {}
unsafe impl Sync for FrameSlot {}

impl FrameSlot {
    pub(crate) fn new(data: Box<[u8; PAGE_SIZE]>, phys: u64) -> FrameSlot {
        FrameSlot {
            phys: AtomicU64::new(phys),
            version: AtomicU64::new(0),
            pin: AtomicU32::new(0),
            content: AtomicU64::new(0),
            latch: RwLock::new(()),
            data: NonNull::from(Box::leak(data)),
        }
    }

    pub(crate) fn phys(&self) -> u64 {
        self.phys.load(Ordering::Acquire)
    }

    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    pub(crate) fn pin_count(&self) -> u32 {
        self.pin.load(Ordering::SeqCst)
    }

    /// Add one pin. Callers must either hold the owning shard's map latch
    /// (first pin of a lookup), the pool's policy lock (miss path), or an
    /// existing pin (guard clone), so the frame cannot be concurrently
    /// recycled.
    pub(crate) fn pin(&self) {
        let old = self.pin.fetch_add(1, Ordering::SeqCst);
        assert!(old < u32::MAX, "pin count overflow");
    }

    /// Release one pin.
    pub(crate) fn unpin(&self) {
        let old = self.pin.fetch_sub(1, Ordering::SeqCst);
        assert!(old > 0, "unpin without pin");
    }

    /// Raw pointer to the page buffer (for the historical `BufferPool::pin`
    /// test API).
    pub(crate) fn data_ptr(&self) -> NonNull<[u8; PAGE_SIZE]> {
        self.data
    }

    /// The page bytes.
    ///
    /// # Safety
    /// The caller must hold a pin (or otherwise exclude writers/recycling,
    /// e.g. the policy lock plus shard write latch).
    pub(crate) unsafe fn bytes(&self) -> &[u8] {
        &self.data.as_ref()[..]
    }

    /// Exclusive access to the page buffer.
    ///
    /// # Safety
    /// The caller must guarantee exclusivity, one of:
    /// * `pin == 0` *and* no concurrent reader can acquire a pin (slot
    ///   unmapped, or the owning shard's write latch held) — the default
    ///   single-writer path; or
    /// * the frame `latch` is held exclusively inside
    ///   [`FrameSlot::with_latched_write`] — the concurrent write path,
    ///   where pinned readers exist but only ever observe the bytes
    ///   through seqlock-validated snapshots or under the shared latch.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn buffer_mut(&self) -> &mut [u8; PAGE_SIZE] {
        &mut *self.data.as_ptr()
    }

    /// Re-purpose a recycled slot for a new physical page.
    ///
    /// # Safety
    /// Same exclusivity requirement as [`FrameSlot::buffer_mut`].
    pub(crate) unsafe fn reset_for(&self, phys: u64) {
        debug_assert_eq!(self.pin_count(), 0, "cannot recycle a pinned slot");
        self.phys.store(phys, Ordering::Release);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Current content-seqlock word (odd while a latched writer is
    /// mutating the page bytes).
    pub(crate) fn content_version(&self) -> u64 {
        self.content.load(Ordering::Acquire)
    }

    /// Run `f` holding the frame write latch, with the content seqlock odd
    /// for the duration — the only sanctioned way to mutate a page that
    /// concurrent optimistic readers may be snapshotting. The seqlock is
    /// restored to even even if `f` unwinds, so a panicking callback
    /// cannot wedge every future optimistic read of this frame into the
    /// slow path.
    pub(crate) fn with_latched_write<R>(&self, f: impl FnOnce() -> R) -> R {
        let _latch = self.latch.write();
        let odd = self.content.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(odd & 1, 0, "nested latched write on one frame");
        struct Parity<'a>(&'a AtomicU64);
        impl Drop for Parity<'_> {
            fn drop(&mut self) {
                let even = self.0.fetch_add(1, Ordering::AcqRel);
                debug_assert_eq!(even & 1, 1, "seqlock parity lost");
            }
        }
        let _parity = Parity(&self.content);
        f()
    }

    /// One optimistic seqlock read: copy the page into `out` without any
    /// lock and return the (even) content version the copy is consistent
    /// with, or `None` if a writer was active or intervened.
    ///
    /// The caller must hold a pin (so the buffer cannot be recycled or
    /// freed); torn bytes from a concurrent latched writer are possible in
    /// `out` but are detected and discarded via the version re-check.
    pub(crate) fn try_snapshot_into(&self, out: &mut [u8; PAGE_SIZE]) -> Option<u64> {
        let before = self.content.load(Ordering::Acquire);
        if before & 1 == 1 {
            return None;
        }
        // SAFETY: the pin keeps the allocation alive; the copy itself may
        // race a latched writer, which is why it goes through volatile
        // word reads (never materialising a `&` over the racing bytes) and
        // why the result is only *used* if the seqlock word is unchanged
        // afterwards.
        unsafe {
            let src = self.data.as_ptr() as *const u64;
            let dst = out.as_mut_ptr() as *mut u64;
            for i in 0..(PAGE_SIZE / 8) as isize {
                dst.offset(i).write(src.offset(i).read_volatile());
            }
        }
        let after = self.content.load(Ordering::Acquire);
        (before == after).then_some(before)
    }

    /// Consistent page snapshot for the concurrent write path: a few
    /// optimistic attempts, then a blocking shared-latch copy (writers are
    /// excluded while the shared latch is held, so that copy is always
    /// consistent). Returns the content version the snapshot reflects.
    ///
    /// Callers must hold a pin and must not hold the pool's policy lock
    /// (the latch fallback may block on a writer that is waiting for it).
    pub(crate) fn snapshot_into(&self, out: &mut [u8; PAGE_SIZE]) -> u64 {
        for _ in 0..OPTIMISTIC_SNAPSHOT_RETRIES {
            if let Some(version) = self.try_snapshot_into(out) {
                return version;
            }
            std::hint::spin_loop();
        }
        let _latch = self.latch.read();
        // SAFETY: the shared latch excludes latched writers and the pin
        // excludes recycling, so the buffer is stable for the copy.
        out.copy_from_slice(unsafe { self.bytes() });
        self.content.load(Ordering::Acquire)
    }
}

impl Drop for FrameSlot {
    fn drop(&mut self) {
        // SAFETY: the buffer came from `Box::leak` in `new` and is dropped
        // exactly once, when the last `Arc<FrameSlot>` goes.
        drop(unsafe { Box::from_raw(self.data.as_ptr()) });
    }
}

/// RAII pin on a frame slot: increments on creation/clone, decrements on
/// drop — including drops during unwinding, so pin counts stay balanced
/// across panics in user callbacks.
pub(crate) struct PinnedSlot {
    slot: Arc<FrameSlot>,
}

impl PinnedSlot {
    /// Wrap a slot whose pin count has **already** been incremented for
    /// this handle (the pool pins under the appropriate latch).
    pub(crate) fn adopt(slot: Arc<FrameSlot>) -> PinnedSlot {
        debug_assert!(slot.pin_count() > 0, "adopt requires an existing pin");
        PinnedSlot { slot }
    }

    pub(crate) fn slot(&self) -> &FrameSlot {
        &self.slot
    }

    /// The pinned page's bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: this handle holds a pin, so the buffer is neither
        // written, recycled nor freed.
        unsafe { self.slot.bytes() }
    }

    /// Consume the handle, keeping its pin (for the manual
    /// [`BufferPool::pin`](crate::BufferPool::pin)/`unpin` API). The `Arc`
    /// reference is released; the pin count stays raised until a matching
    /// `unpin`.
    pub(crate) fn leak_pin(self) {
        let mut this = std::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped (ManuallyDrop), so the Arc is
        // released exactly once, here, and the unpin in `Drop` is skipped.
        unsafe { std::ptr::drop_in_place(&mut this.slot) };
    }
}

impl Clone for PinnedSlot {
    fn clone(&self) -> Self {
        // Holding a pin already, so the slot cannot be recycled while we
        // add another — no latch needed.
        self.slot.pin();
        PinnedSlot {
            slot: self.slot.clone(),
        }
    }
}

impl Drop for PinnedSlot {
    fn drop(&mut self) {
        self.slot.unpin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_unpin_balance() {
        let s = FrameSlot::new(Box::new([0u8; PAGE_SIZE]), 7);
        assert_eq!(s.pin_count(), 0);
        s.pin();
        s.pin();
        assert_eq!(s.pin_count(), 2);
        s.unpin();
        s.unpin();
        assert_eq!(s.pin_count(), 0);
        assert_eq!(s.phys(), 7);
    }

    #[test]
    #[should_panic(expected = "unpin without pin")]
    fn unbalanced_unpin_panics() {
        let s = FrameSlot::new(Box::new([0u8; PAGE_SIZE]), 0);
        s.unpin();
    }

    #[test]
    fn pinned_slot_releases_on_drop_and_clone_repins() {
        let slot = Arc::new(FrameSlot::new(Box::new([9u8; PAGE_SIZE]), 1));
        slot.pin();
        let a = PinnedSlot::adopt(slot.clone());
        assert_eq!(slot.pin_count(), 1);
        let b = a.clone();
        assert_eq!(slot.pin_count(), 2);
        assert_eq!(a.bytes()[0], 9);
        drop(a);
        assert_eq!(slot.pin_count(), 1);
        drop(b);
        assert_eq!(slot.pin_count(), 0);
    }

    #[test]
    fn pinned_slot_unpins_during_unwind() {
        let slot = Arc::new(FrameSlot::new(Box::new([0u8; PAGE_SIZE]), 2));
        slot.pin();
        let pinned = PinnedSlot::adopt(slot.clone());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _hold = pinned;
            panic!("boom");
        }));
        assert!(r.is_err());
        assert_eq!(slot.pin_count(), 0, "pin must be released on unwind");
    }
}
