//! Group commit and the background checkpointer.
//!
//! A shadow-paged commit ([`FileStorage::sync`](crate::FileStorage)) costs
//! two device flushes no matter how little changed, and the pool's
//! [`sync`](crate::BufferPool::sync) stalls its caller while the whole
//! dirty set flushes. This module splits that cost two ways:
//!
//! * [`CommitQueue`] — **group commit**. Concurrent committers take a
//!   ticket; the first one in becomes the *leader*, runs one flush
//!   covering every ticket issued so far, and wakes the rest with the
//!   durable epoch. Callers that arrive while a flush is in flight wait
//!   and are covered by the *next* flush (one of them leads it). N
//!   concurrent commits therefore cost far fewer than N flushes — the
//!   commit bench measures the amortisation. Built exclusively on the
//!   crate's [`sync`](crate::sync) facade, so under the `model` feature
//!   the whole protocol runs on the `loom` checker (no lost wakeups,
//!   bounded waiters — see `tests/model.rs`).
//! * [`Checkpointer`] — a **background thread** that trickles dirty
//!   frames to the medium in bounded slices
//!   ([`BufferPool::checkpoint_slice`](crate::BufferPool::checkpoint_slice)),
//!   so the eventual commit flip finds an almost-clean pool and the
//!   foreground `sync` degenerates to "wait until my epoch is durable".
//!   It shuts down cleanly (signal + join) and hands off to degraded
//!   read-only mode if the medium dies mid-checkpoint: the thread parks
//!   itself, records the cause, and leaves the pool serving reads.
//!
//! Neither is wired up by default: a plain [`Pager`](crate::Pager) on
//! [`MemStorage`](crate::MemStorage) behaves exactly as before (the
//! golden page gates depend on it). Group commit engages only through
//! [`Pager::group_sync`](crate::Pager::group_sync), the checkpointer only
//! through [`Pager::start_checkpointer`](crate::Pager::start_checkpointer).

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;

/// Outcome counters of a [`CommitQueue`], for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitQueueStats {
    /// Logical commits acknowledged.
    pub commits: u64,
    /// Physical flushes actually run (≤ `commits`; the gap is the
    /// amortisation group commit buys).
    pub flushes: u64,
    /// High-water mark of committers blocked waiting at once.
    pub max_waiters: usize,
}

struct QueueState {
    /// Tickets issued. A committer's ticket is `submitted` after its
    /// increment; a flush covers every ticket issued before it started.
    submitted: u64,
    /// Every ticket ≤ `durable` has been covered by a successful flush.
    durable: u64,
    /// Storage commit epoch reported by the latest successful flush.
    epoch: u64,
    /// True while a leader runs a flush outside the lock.
    flushing: bool,
    commits: u64,
    flushes: u64,
    waiters: usize,
    max_waiters: usize,
    /// Sticky failure: once a flush fails the medium is suspect and every
    /// current and future committer gets the cause (the pool degrades to
    /// read-only in the same breath). Cleared by
    /// [`CommitQueue::reset_failure`] on heal.
    fail: Option<Arc<str>>,
}

/// Ticket-based group commit: see the module docs.
pub struct CommitQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl CommitQueue {
    pub fn new() -> Self {
        CommitQueue {
            state: Mutex::new(QueueState {
                submitted: 0,
                durable: 0,
                epoch: 0,
                flushing: false,
                commits: 0,
                flushes: 0,
                waiters: 0,
                max_waiters: 0,
                fail: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Commit: take a ticket, then either lead one flush covering every
    /// outstanding ticket or wait to be covered by another leader's
    /// flush. Returns the durable storage epoch the caller's ticket is
    /// included in. `flush` must make *everything submitted so far*
    /// durable and report the resulting epoch — for the pool that is
    /// [`BufferPool::sync`](crate::BufferPool::sync), whose policy lock
    /// already serialises it against concurrent writers.
    ///
    /// On a flush failure every covered committer (and all later ones)
    /// receives the cause; see `QueueState::fail`.
    pub fn commit(&self, flush: impl FnOnce() -> Result<u64, Arc<str>>) -> Result<u64, Arc<str>> {
        let mut flush = Some(flush);
        let mut s = self.state.lock();
        if let Some(cause) = &s.fail {
            return Err(cause.clone());
        }
        s.submitted += 1;
        let ticket = s.submitted;
        loop {
            if let Some(cause) = &s.fail {
                return Err(cause.clone());
            }
            if s.durable >= ticket {
                s.commits += 1;
                return Ok(s.epoch);
            }
            if !s.flushing {
                // Lead: cover every ticket issued up to now, flush
                // outside the lock so new committers can queue meanwhile.
                s.flushing = true;
                let target = s.submitted;
                drop(s);
                let result = (flush.take().expect("a committer leads at most once"))();
                s = self.state.lock();
                s.flushing = false;
                s.flushes += 1;
                match result {
                    Ok(epoch) => {
                        s.durable = s.durable.max(target);
                        s.epoch = epoch;
                    }
                    Err(cause) => s.fail = Some(cause),
                }
                // Wake everyone: covered waiters return, uncovered ones
                // race to lead the next flush. `notify_all` under the
                // lock after the state change — no lost wakeups.
                self.cv.notify_all();
                return match &s.fail {
                    Some(cause) => Err(cause.clone()),
                    None => {
                        s.commits += 1;
                        Ok(s.epoch)
                    }
                };
            }
            s.waiters += 1;
            s.max_waiters = s.max_waiters.max(s.waiters);
            s = self.cv.wait(s);
            s.waiters -= 1;
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CommitQueueStats {
        let s = self.state.lock();
        CommitQueueStats {
            commits: s.commits,
            flushes: s.flushes,
            max_waiters: s.max_waiters,
        }
    }

    /// Clear a sticky flush failure after the medium healed (paired with
    /// [`BufferPool::clear_degraded`](crate::BufferPool::clear_degraded)).
    /// Returns whether a failure was pending.
    pub fn reset_failure(&self) -> bool {
        let mut s = self.state.lock();
        let was = s.fail.take().is_some();
        if was {
            self.cv.notify_all();
        }
        was
    }
}

impl Default for CommitQueue {
    fn default() -> Self {
        CommitQueue::new()
    }
}

// The checkpointer drives a real OS thread on a timer, which the loom
// model cannot (and need not) schedule — under the `model` feature it is
// compiled out entirely, keeping model builds free of non-deterministic
// actors. The CommitQueue above *is* model-checked.
#[cfg(not(feature = "model"))]
pub use real_checkpointer::{Checkpointer, CheckpointerConfig};

#[cfg(not(feature = "model"))]
mod real_checkpointer {
    use crate::cache::BufferPool;
    use crate::error::PageError;
    use std::sync::Arc;
    // std sync on purpose (not the crate facade): the tick loop needs
    // `wait_timeout`, which the facade deliberately omits — a timed wait
    // is not a schedulable model step. This module never builds under
    // the `model` feature, so nothing escapes the checker's coverage.
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};
    use std::time::Duration;

    /// Tuning for a [`Checkpointer`] thread.
    #[derive(Debug, Clone)]
    pub struct CheckpointerConfig {
        /// Sleep between checkpoint slices (a `kick` cuts it short).
        pub interval: Duration,
        /// Max dirty frames flushed per slice — bounds how long the
        /// policy lock is held away from foreground traffic.
        pub slice_pages: usize,
    }

    impl Default for CheckpointerConfig {
        fn default() -> Self {
            CheckpointerConfig {
                interval: Duration::from_millis(10),
                slice_pages: 16,
            }
        }
    }

    #[derive(Default)]
    struct Signal {
        stop: bool,
        kicks: u64,
    }

    struct Shared {
        signal: StdMutex<Signal>,
        cv: StdCondvar,
        /// Set exactly once, when the thread parks after the medium died
        /// mid-checkpoint (the degraded handoff).
        stopped_cause: StdMutex<Option<Arc<str>>>,
    }

    /// Handle to a background checkpointing thread. See the module docs;
    /// dropping the handle shuts the thread down cleanly (signal + join).
    pub struct Checkpointer {
        shared: Arc<Shared>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl Checkpointer {
        /// Spawn a checkpointer over `pool`. The pool keeps working if
        /// the handle is leaked, but the thread only stops via the
        /// handle ([`shutdown`](Checkpointer::shutdown) or drop).
        pub fn spawn(pool: Arc<BufferPool>, cfg: CheckpointerConfig) -> Self {
            let shared = Arc::new(Shared {
                signal: StdMutex::new(Signal::default()),
                cv: StdCondvar::new(),
                stopped_cause: StdMutex::new(None),
            });
            let thread_shared = shared.clone();
            let thread = std::thread::Builder::new()
                .name("pagestore-checkpointer".into())
                .spawn(move || run(pool, cfg, thread_shared))
                .expect("spawn checkpointer thread");
            Checkpointer {
                shared,
                thread: Some(thread),
            }
        }

        /// Wake the thread for an immediate slice (tests; ingest bursts).
        pub fn kick(&self) {
            let mut s = self.shared.signal.lock().expect("checkpointer signal lock");
            s.kicks += 1;
            drop(s);
            self.shared.cv.notify_all();
        }

        /// `Some(cause)` once the thread parked itself because the pool
        /// degraded mid-checkpoint.
        pub fn stopped_cause(&self) -> Option<Arc<str>> {
            self.shared
                .stopped_cause
                .lock()
                .expect("checkpointer cause lock")
                .clone()
        }

        /// Signal the thread and join it. Pending dirty frames simply
        /// stay dirty — the next `sync`/`group_sync` flushes them; no
        /// durability is lost by stopping the trickle.
        pub fn shutdown(mut self) {
            self.stop_and_join();
        }

        fn stop_and_join(&mut self) {
            if let Some(handle) = self.thread.take() {
                {
                    let mut s = self.shared.signal.lock().expect("checkpointer signal lock");
                    s.stop = true;
                }
                self.shared.cv.notify_all();
                let _ = handle.join();
            }
        }
    }

    impl Drop for Checkpointer {
        fn drop(&mut self) {
            self.stop_and_join();
        }
    }

    fn run(pool: Arc<BufferPool>, cfg: CheckpointerConfig, shared: Arc<Shared>) {
        let mut seen_kicks = 0u64;
        loop {
            {
                let mut s = shared.signal.lock().expect("checkpointer signal lock");
                // Sleep one interval, cut short by a stop or a kick.
                let deadline = std::time::Instant::now() + cfg.interval;
                while !s.stop && s.kicks == seen_kicks {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (next, timeout) = shared
                        .cv
                        .wait_timeout(s, left)
                        .expect("checkpointer signal lock");
                    s = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
                if s.stop {
                    return;
                }
                seen_kicks = s.kicks;
            }
            match pool.checkpoint_slice(cfg.slice_pages) {
                Ok(_) => {}
                Err(PageError::ReadOnly { cause }) => {
                    // Degraded handoff: the medium refused a write-back
                    // (the slice already flipped the pool read-only).
                    // Park for good; reads keep serving, the cause is
                    // observable on the handle and on the pool.
                    *shared
                        .stopped_cause
                        .lock()
                        .expect("checkpointer cause lock") = Some(cause);
                    return;
                }
                // Any other error shape is unexpected from a pure
                // write-back path; treat it like a degraded stop rather
                // than hot-looping on a broken medium.
                Err(e) => {
                    *shared
                        .stopped_cause
                        .lock()
                        .expect("checkpointer cause lock") =
                        Some(Arc::from(e.to_string().as_str()));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_committer_leads_its_own_flush() {
        let q = CommitQueue::new();
        let epoch = q.commit(|| Ok(7)).expect("commit");
        assert_eq!(epoch, 7);
        let s = q.stats();
        assert_eq!((s.commits, s.flushes, s.max_waiters), (1, 1, 0));
    }

    #[test]
    fn failure_is_sticky_until_reset() {
        let q = CommitQueue::new();
        let err = q.commit(|| Err(Arc::from("medium died"))).unwrap_err();
        assert_eq!(&*err, "medium died");
        // The next committer must not even attempt a flush.
        let err = q
            .commit(|| -> Result<u64, Arc<str>> { panic!("flush after failure") })
            .unwrap_err();
        assert_eq!(&*err, "medium died");
        assert!(q.reset_failure());
        assert!(!q.reset_failure());
        assert_eq!(q.commit(|| Ok(3)).expect("healed"), 3);
    }

    #[test]
    fn concurrent_committers_amortise_flushes() {
        // 8 threads × 4 commits against a flush that takes long enough
        // for queues to form: total flushes must come in under total
        // commits (group commit working), and every commit must succeed.
        let q = Arc::new(CommitQueue::new());
        let flushed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let q = q.clone();
                let flushed = flushed.clone();
                scope.spawn(move || {
                    for _ in 0..4 {
                        q.commit(|| {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            Ok(flushed.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1)
                        })
                        .expect("commit");
                    }
                });
            }
        });
        let s = q.stats();
        assert_eq!(s.commits, 32);
        assert_eq!(s.flushes, flushed.load(std::sync::atomic::Ordering::SeqCst));
        assert!(
            s.flushes < s.commits,
            "32 overlapping commits must share flushes, got {} flushes",
            s.flushes
        );
    }

    #[cfg(not(feature = "model"))]
    #[test]
    fn checkpointer_trickles_and_shuts_down_cleanly() {
        use crate::{BufferPool, FileStorage, IoCostModel, Pager, PAGE_SIZE};
        let pool = BufferPool::new(
            FileStorage::create_on(Box::new(crate::MemFile::new())).expect("create"),
            64 * PAGE_SIZE,
            IoCostModel::default(),
        );
        let pager = Pager::with_pool(pool);
        let f = pager.create_file();
        let mut page = vec![0u8; PAGE_SIZE];
        for p in 0..16 {
            pager.allocate_page(f);
            page.fill(p as u8 + 1);
            pager.write_page(f, p, &page);
        }
        let ckpt = pager.start_checkpointer(CheckpointerConfig {
            interval: std::time::Duration::from_secs(3600), // only kicks tick it
            slice_pages: 4,
        });
        for _ in 0..10 {
            ckpt.kick();
            if pager.stats().checkpoint_pages >= 16 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(
            pager.stats().checkpoint_pages >= 16,
            "checkpointer must flush all dirty frames, got {}",
            pager.stats().checkpoint_pages
        );
        assert!(ckpt.stopped_cause().is_none());
        // shutdown joins; a hang here fails the test by timeout.
        ckpt.shutdown();
        // The trickled pages become durable at the next commit flip.
        pager.sync().expect("sync after checkpoint");
        let d = pager.stats();
        assert_eq!(d.synced_pages, 0, "nothing left dirty for the stall flush");
    }
}
