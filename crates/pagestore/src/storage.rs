//! The storage backend abstraction: where pages actually live.
//!
//! The buffer pool is written against this trait so that the same caching,
//! eviction and miss-accounting code serves two very different backends —
//! the shape the `floppy` storage engine uses for its simulated vs. real
//! environments:
//!
//! * [`MemStorage`](crate::MemStorage) — the historical in-memory page
//!   array. Deterministic, allocation-cheap, and the default everywhere;
//!   the paper's page-access measurements run on it.
//! * [`FileStorage`](crate::FileStorage) — one real on-disk file holding a
//!   superblock, every page (checksummed), and a metadata trailer with the
//!   `(file, page) → physical page` table plus the catalog. Indexes built
//!   on it survive a process restart and reopen without a rebuild.
//!
//! Both backends expose the same primitives a database file layer builds
//! on: logical files of fixed-size pages, whole-page reads/writes addressed
//! by *physical* page number (which the pool also uses to classify misses
//! as sequential vs. random), a small key→blob *catalog* for index
//! metadata, and an explicit [`Storage::sync`] barrier.

use crate::disk::{FileId, PageId, PAGE_SIZE};

/// Physical page number across the whole storage (allocation order).
/// Physically consecutive numbers are consecutive on the medium, which is
/// what the buffer pool's sequential-vs-random miss classification keys on.
pub type PhysPage = u64;

/// Errors surfaced by a storage backend.
///
/// [`MemStorage`](crate::MemStorage) never returns these (its failure mode
/// is a programming error and panics with a named assert); the file backend
/// returns them for I/O failures and integrity violations.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// An I/O operation failed *transiently* — the medium hiccuped (an
    /// `EINTR`/`EIO`-style blip, a timeout) but the data underneath may be
    /// fine. The buffer pool retries these under its
    /// [`RetryPolicy`](crate::RetryPolicy) before giving up.
    Transient(std::io::Error),
    /// The file is not a storage file, or was written by an incompatible
    /// version / page size.
    BadSuperblock(String),
    /// A page, trailer or superblock checksum did not match: the file is
    /// corrupt (or was truncated / partially written).
    ChecksumMismatch {
        /// What failed the check ("page 17", "trailer", "superblock").
        what: String,
        expected: u64,
        actual: u64,
    },
    /// A commit failed partway through its I/O, so the in-memory state
    /// and the file may disagree about which slots are reachable. The
    /// storage refuses further mutation; reopen the file to run recovery
    /// (which restores a fully committed epoch).
    Poisoned {
        /// Path of the poisoned storage file (`"<image>"` for in-memory
        /// images).
        path: String,
        /// The originating commit failure, rendered.
        cause: String,
    },
}

impl StorageError {
    /// True for failures worth retrying: the explicit [`Transient`] class
    /// plus I/O errors whose kind signals a blip rather than a verdict —
    /// interrupted calls, timeouts, and short reads (`UnexpectedEof`, which
    /// a racing writer or a flaky NFS mount can produce on data that reads
    /// fine moments later).
    ///
    /// [`Transient`]: StorageError::Transient
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Transient(_) => true,
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }

    /// True for integrity violations: the bytes came back but are rot.
    /// Never retried (re-reading rotten bits is wasted I/O); the pool
    /// quarantines the page instead.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StorageError::ChecksumMismatch { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Transient(e) => {
                write!(f, "transient storage I/O error: {e} (a retry may succeed)")
            }
            StorageError::BadSuperblock(why) => write!(f, "bad storage superblock: {why}"),
            StorageError::ChecksumMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch on {what}: expected {expected:#018x}, found {actual:#018x} \
                 (file is corrupt or truncated)"
            ),
            StorageError::Poisoned { path, cause } => write!(
                f,
                "storage {path} poisoned by a failed commit ({cause}); refusing further \
                 writes — reopen the file to recover a committed epoch"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) | StorageError::Transient(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// A page-granular storage backend under the buffer pool.
///
/// All calls arrive serialised under the pool's policy lock, so
/// implementations need no internal synchronisation — only `Send`, because
/// the pool itself is shared across threads.
///
/// The contract mirrors the historical in-memory disk:
///
/// * pages are allocated append-only and never freed;
/// * physical page numbers are assigned in allocation order (`0, 1, 2, …`),
///   so pages of one file allocated in a run are physically contiguous;
/// * reads and writes move whole [`PAGE_SIZE`] pages.
pub trait Storage: Send {
    /// Create a new, empty logical file and return its id.
    fn create_file(&mut self) -> FileId;

    /// Number of logical files.
    fn file_count(&self) -> usize;

    /// Number of pages allocated to `file`.
    fn file_len(&self, file: FileId) -> u64;

    /// Total pages allocated across all files.
    fn total_pages(&self) -> u64;

    /// Append a zeroed page to `file`; returns its page id within the file.
    fn allocate_page(&mut self, file: FileId) -> PageId;

    /// Physical page number backing `(file, page)`.
    fn phys(&self, file: FileId, page: PageId) -> PhysPage;

    /// Read physical page `phys` into `out`, verifying integrity where the
    /// backend supports it.
    fn read_phys(&mut self, phys: PhysPage, out: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError>;

    /// Overwrite physical page `phys` with `data` (`PAGE_SIZE` bytes).
    fn write_phys(&mut self, phys: PhysPage, data: &[u8]) -> Result<(), StorageError>;

    /// Store `bytes` under `key` in the catalog — the small key→blob store
    /// index structures use for their non-paged state (configs, orders,
    /// directories). Replaces any previous value.
    fn put_catalog(&mut self, key: &str, bytes: &[u8]);

    /// Fetch the catalog entry under `key`.
    fn get_catalog(&self, key: &str) -> Option<Vec<u8>>;

    /// All catalog keys, sorted (deterministic across backends).
    fn catalog_keys(&self) -> Vec<String>;

    /// Durability barrier: make every page written so far, the file table
    /// and the catalog survive a process restart. A no-op for in-memory
    /// backends.
    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Commit epoch of the last durable [`sync`](Storage::sync): the
    /// monotonically increasing generation the shadow-paged file backend
    /// stamps into each superblock flip. Backends without a commit
    /// protocol report 0 forever — "everything is always epoch 0" is the
    /// correct degenerate reading for a memory disk, where every write is
    /// immediately "durable" for the process lifetime.
    fn epoch(&self) -> u64 {
        0
    }
}

/// FNV-1a, 64-bit — the checksum used for pages, trailer and superblock of
/// the file backend. Not cryptographic; it exists to turn bit rot and
/// torn/truncated writes into a named error instead of garbage results.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = StorageError::ChecksumMismatch {
            what: "page 17".into(),
            expected: 1,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("page 17") && msg.contains("checksum"));
    }

    #[test]
    fn poisoned_display_names_the_file_and_cause() {
        let e = StorageError::Poisoned {
            path: "/tmp/idx.oif".into(),
            cause: "sync failed: disk full".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("poisoned"));
        assert!(msg.contains("/tmp/idx.oif"), "must name the file: {msg}");
        assert!(msg.contains("disk full"), "must carry the cause: {msg}");
    }

    #[test]
    fn transient_classification() {
        use std::io::{Error, ErrorKind};
        assert!(StorageError::Transient(Error::other("blip")).is_transient());
        assert!(StorageError::Io(Error::from(ErrorKind::Interrupted)).is_transient());
        assert!(
            StorageError::Io(Error::from(ErrorKind::UnexpectedEof)).is_transient(),
            "short reads are transient"
        );
        assert!(!StorageError::Io(Error::from(ErrorKind::PermissionDenied)).is_transient());
        let rot = StorageError::ChecksumMismatch {
            what: "page 3".into(),
            expected: 1,
            actual: 2,
        };
        assert!(!rot.is_transient(), "corruption is never retried");
        assert!(rot.is_corruption());
        assert!(!StorageError::Transient(Error::other("blip")).is_corruption());
    }
}
