//! Raw byte-level file abstraction under [`FileStorage`](crate::FileStorage).
//!
//! The durable backend does all its physical I/O — positioned reads and
//! writes, truncation, durability barriers — through this trait instead of
//! `std::fs::File` directly, so the *same* storage code runs over:
//!
//! * [`OsFile`] — a real file on disk (`pread`/`pwrite` on unix, a
//!   `seek` + `read`/`write` pair elsewhere);
//! * [`MemFile`] — an in-memory byte image, used to reopen frozen crash
//!   images harvested by the fault harness without touching the
//!   filesystem;
//! * [`FaultFile`](crate::fault::FaultFile) — the fault-injection wrapper
//!   that counts every mutating operation and can simulate a crash at any
//!   of them (see [`fault`](crate::fault)).
//!
//! Each `write_at` / `set_len` / `sync_all` call is one *physical I/O
//! operation* — the granularity at which the crash-recovery harness
//! injects faults, and therefore the granularity at which
//! [`FileStorage`](crate::FileStorage)'s commit protocol must be
//! crash-atomic.

use std::fs::File;
use std::io;
#[cfg(not(unix))]
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// A positioned-I/O byte file. Implementations need no internal
/// synchronisation (`FileStorage` owns its file exclusively and all calls
/// arrive serialised under the buffer pool's policy lock) — only `Send`.
pub trait RawFile: Send {
    /// Read exactly `out.len()` bytes at `offset`; errors (like
    /// `read_exact`) if the file ends first.
    fn read_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()>;

    /// Write all of `data` at `offset`, extending the file if the range
    /// lies past its current end.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Truncate or zero-extend the file to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current file length in bytes.
    fn byte_len(&mut self) -> io::Result<u64>;

    /// Durability barrier: all preceding writes reach the medium before
    /// any following write. A no-op for in-memory implementations.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// [`RawFile`] over a real `std::fs::File`.
///
/// On unix, positioned reads/writes are single `pread`/`pwrite` syscalls
/// (`FileExt::read_exact_at` / `write_all_at`) with no cursor motion —
/// half the syscalls of the historical `seek` + `read` pair, one saved per
/// page fault. Other platforms keep the two-call fallback.
pub struct OsFile {
    file: File,
}

impl OsFile {
    pub fn new(file: File) -> Self {
        OsFile { file }
    }
}

impl RawFile for OsFile {
    fn read_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            FileExt::read_exact_at(&self.file, out, offset)
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(out)
        }
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            FileExt::write_all_at(&self.file, data, offset)
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(data)
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// [`RawFile`] over an in-memory byte vector.
///
/// The crash-recovery harness opens frozen disk images through this:
/// `FileStorage::open_image(bytes)` behaves exactly like reopening a real
/// file holding those bytes, including every checksum verification, and
/// the reopened storage stays writable (recovery-then-resync tests).
#[derive(Default)]
pub struct MemFile {
    bytes: Vec<u8>,
}

impl MemFile {
    pub fn new() -> Self {
        MemFile::default()
    }

    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemFile { bytes }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl RawFile for MemFile {
    fn read_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        read_image_at(&self.bytes, offset, out)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        write_image_at(&mut self.bytes, offset, data);
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.bytes
            .resize(usize::try_from(len).expect("length fits memory"), 0);
        Ok(())
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.bytes.len() as u64)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// `read_exact`-style positioned read from a byte image (shared with the
/// fault wrapper).
pub(crate) fn read_image_at(image: &[u8], offset: u64, out: &mut [u8]) -> io::Result<()> {
    let start = usize::try_from(offset).map_err(|_| io::ErrorKind::UnexpectedEof)?;
    let end = start
        .checked_add(out.len())
        .ok_or(io::ErrorKind::UnexpectedEof)?;
    if end > image.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "read of {} byte(s) at offset {offset} past end of {}-byte image",
                out.len(),
                image.len()
            ),
        ));
    }
    out.copy_from_slice(&image[start..end]);
    Ok(())
}

/// Positioned write into a byte image, zero-extending like a real file
/// (shared with the fault wrapper).
pub(crate) fn write_image_at(image: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let start = usize::try_from(offset).expect("offset fits memory");
    let end = start + data.len();
    if end > image.len() {
        image.resize(end, 0);
    }
    image[start..end].copy_from_slice(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfile_round_trips_and_extends() {
        let mut f = MemFile::new();
        f.write_at(10, b"abc").unwrap();
        assert_eq!(f.byte_len().unwrap(), 13);
        let mut out = [0u8; 3];
        f.read_at(10, &mut out).unwrap();
        assert_eq!(&out, b"abc");
        // The gap was zero-filled, like a sparse file.
        let mut gap = [9u8; 10];
        f.read_at(0, &mut gap).unwrap();
        assert!(gap.iter().all(|&b| b == 0));
    }

    #[test]
    fn memfile_short_read_is_an_error() {
        let mut f = MemFile::from_bytes(vec![1, 2, 3]);
        let mut out = [0u8; 4];
        let err = f.read_at(0, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(f.read_at(4, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn memfile_set_len_truncates_and_extends() {
        let mut f = MemFile::from_bytes(vec![7; 8]);
        f.set_len(4).unwrap();
        assert_eq!(f.byte_len().unwrap(), 4);
        f.set_len(6).unwrap();
        let mut out = [9u8; 2];
        f.read_at(4, &mut out).unwrap();
        assert_eq!(out, [0, 0], "extension must zero-fill");
        f.sync_all().unwrap();
    }
}
