//! Tiny scoped thread-pool helper shared by the parallel query engines.
//!
//! One atomic work cursor over `0..n`, dynamic work stealing (a cheap
//! item never stalls a worker behind an expensive one), results returned
//! in index order. Lives in this crate because `pagestore` is the
//! workspace's concurrency substrate — every parallel consumer (`oif`,
//! `invfile`, `bench`, the workspace stress tests) already depends on it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `0..n` through `eval` using `threads` scoped workers, each with
/// its own worker state from `init` (scratch buffers, accumulators, …).
/// Returns the results in index order.
///
/// `threads` is clamped to `[1, n]`; with one thread the map runs inline
/// on the caller (no spawn), still reusing a single `init()` state across
/// the whole batch. A panic in `eval` propagates to the caller.
pub fn par_map_with<S, R: Send>(
    n: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..n).map(|i| eval(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, init, eval) = (&next, &init, &eval);
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, eval(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        // Join *every* worker before propagating any panic: panicking on
        // the first failed join would leave unjoined handles for the
        // scope's unwind to re-join, and a second panicking worker would
        // then double-panic and abort the process.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        for j in joined {
            for (i, r) in j.expect("par_map worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index evaluated exactly once"))
        .collect()
}

/// [`par_map_with`] without per-worker state.
pub fn par_map<R: Send>(n: usize, threads: usize, eval: impl Fn(usize) -> R + Sync) -> Vec<R> {
    par_map_with(n, threads, || (), |_, i| eval(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order_any_thread_count() {
        for threads in [0usize, 1, 2, 4, 9] {
            let out = par_map(7, threads, |i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36], "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(par_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn every_item_evaluated_exactly_once_with_worker_state() {
        let handled = AtomicUsize::new(0);
        let out = par_map_with(
            100,
            4,
            || &handled,
            |state, i| {
                state.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(handled.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            par_map(8, 4, |i| {
                if i == 5 {
                    panic!("item failure");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn multiple_panicking_workers_propagate_one_panic_not_abort() {
        // Every worker panics. All handles must be joined before the
        // first panic propagates — otherwise the scope re-joins panicked
        // threads during unwinding and double-panics (process abort,
        // which would kill this test binary rather than fail the test).
        let r =
            std::panic::catch_unwind(|| par_map(8, 4, |i| -> usize { panic!("item {i} failure") }));
        assert!(r.is_err());
    }
}
