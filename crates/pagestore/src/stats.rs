//! I/O counters mirroring what the paper reports from Berkeley DB.

use std::time::Duration;

/// Snapshot of the buffer pool's I/O activity.
///
/// The paper's primary metric is *disk page accesses*, i.e. cache misses
/// ([`IoStats::misses`]); its time plots additionally split query latency
/// into I/O time (here, simulated by the [`IoCostModel`](crate::IoCostModel))
/// and CPU time (measured by the harness).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Cache misses whose physical page immediately follows the previously
    /// fetched physical page — a sequential disk read.
    pub seq_misses: u64,
    /// All other cache misses — random disk reads (seeks).
    pub random_misses: u64,
    /// Pages written back to the disk.
    pub writes: u64,
    /// Pages flushed by [`Pager::sync`](crate::Pager::sync) specifically
    /// (a subset of [`IoStats::writes`], which also counts eviction
    /// write-backs). Lets tests and the sync bench assert the cost of a
    /// durability barrier in pages…
    pub synced_pages: u64,
    /// …and in bytes (`synced_pages * PAGE_SIZE`, kept separately so the
    /// report stays meaningful if page size ever varies).
    pub synced_bytes: u64,
    /// Transient page-fault read errors absorbed by the retry policy
    /// (each counted retry re-issued the read after a backoff sleep).
    /// Always zero on a healthy medium — the fault-injection gate uses
    /// this to prove retries actually happened.
    pub retries: u64,
    /// Records appended to a write-ahead log attached to this pool's
    /// pager (see [`Wal`](crate::Wal)), reported via
    /// [`note_wal`](crate::Pager::note_wal).
    pub wal_appends: u64,
    /// Payload bytes appended to the WAL (excluding per-record framing).
    pub wal_bytes: u64,
    /// Durability barriers issued: one per successful storage `sync`
    /// (a shadow-paged commit internally performs two device flushes,
    /// counted here as one barrier) plus every WAL fsync reported via
    /// `note_wal`. The group-commit bench divides logical commits by
    /// this to show amortisation.
    pub fsyncs: u64,
    /// Dirty pages flushed by the background checkpointer (a subset of
    /// [`IoStats::writes`]; disjoint from [`IoStats::synced_pages`],
    /// which counts only the stop-the-world flush inside `sync`).
    pub checkpoint_pages: u64,
    /// Simulated I/O time accumulated by the cost model.
    pub io_time: Duration,
}

impl IoStats {
    /// Total cache misses = the paper's "disk page accesses".
    pub fn misses(&self) -> u64 {
        self.seq_misses + self.random_misses
    }

    /// Total page requests.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    ///
    /// Snapshot discipline: both snapshots must come from the same
    /// uninterrupted counting run — if
    /// [`reset_stats`](crate::Pager::reset_stats) was called between them,
    /// `self`'s counters restart from zero and can be *smaller* than
    /// `earlier`'s. Such inverted pairs carry no meaningful delta, so each
    /// field saturates to zero rather than underflowing (which used to
    /// panic in debug profiles and wrap in release).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            hits: self.hits.saturating_sub(earlier.hits),
            seq_misses: self.seq_misses.saturating_sub(earlier.seq_misses),
            random_misses: self.random_misses.saturating_sub(earlier.random_misses),
            writes: self.writes.saturating_sub(earlier.writes),
            synced_pages: self.synced_pages.saturating_sub(earlier.synced_pages),
            synced_bytes: self.synced_bytes.saturating_sub(earlier.synced_bytes),
            retries: self.retries.saturating_sub(earlier.retries),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
            checkpoint_pages: self
                .checkpoint_pages
                .saturating_sub(earlier.checkpoint_pages),
            io_time: self.io_time.saturating_sub(earlier.io_time),
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            hits: self.hits + rhs.hits,
            seq_misses: self.seq_misses + rhs.seq_misses,
            random_misses: self.random_misses + rhs.random_misses,
            writes: self.writes + rhs.writes,
            synced_pages: self.synced_pages + rhs.synced_pages,
            synced_bytes: self.synced_bytes + rhs.synced_bytes,
            retries: self.retries + rhs.retries,
            wal_appends: self.wal_appends + rhs.wal_appends,
            wal_bytes: self.wal_bytes + rhs.wal_bytes,
            fsyncs: self.fsyncs + rhs.fsyncs,
            checkpoint_pages: self.checkpoint_pages + rhs.checkpoint_pages,
            io_time: self.io_time + rhs.io_time,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} misses ({} seq, {} rand), {} hits, {} writes ({} synced, {} ckpt), \
             {} fsyncs, {} wal appends ({} B), io {:?}",
            self.misses(),
            self.seq_misses,
            self.random_misses,
            self.hits,
            self.writes,
            self.synced_pages,
            self.checkpoint_pages,
            self.fsyncs,
            self.wal_appends,
            self.wal_bytes,
            self.io_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fields() {
        let a = IoStats {
            hits: 10,
            seq_misses: 5,
            random_misses: 3,
            writes: 2,
            io_time: Duration::from_millis(40),
            ..IoStats::default()
        };
        let b = IoStats {
            hits: 4,
            seq_misses: 1,
            random_misses: 2,
            writes: 0,
            io_time: Duration::from_millis(16),
            ..IoStats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.hits, 6);
        assert_eq!(d.misses(), 5);
        assert_eq!(d.io_time, Duration::from_millis(24));
    }

    #[test]
    fn since_saturates_after_reset_between_snapshots() {
        // `earlier` taken before a reset_stats, `later` after: every later
        // counter restarted and is smaller. The delta must be zero, not an
        // underflow panic (debug) or a wrapped huge count (release).
        let earlier = IoStats {
            hits: 10,
            seq_misses: 5,
            random_misses: 3,
            writes: 2,
            io_time: Duration::from_millis(40),
            ..IoStats::default()
        };
        let later = IoStats {
            hits: 1,
            seq_misses: 0,
            random_misses: 1,
            writes: 0,
            io_time: Duration::from_millis(2),
            ..IoStats::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d, IoStats::default());
    }

    #[test]
    fn commit_pipeline_counters_flow_through_since_and_add() {
        let earlier = IoStats {
            wal_appends: 2,
            wal_bytes: 64,
            fsyncs: 3,
            checkpoint_pages: 5,
            ..IoStats::default()
        };
        let later = IoStats {
            wal_appends: 7,
            wal_bytes: 200,
            fsyncs: 10,
            checkpoint_pages: 6,
            ..IoStats::default()
        };
        let d = later.since(&earlier);
        assert_eq!(
            (d.wal_appends, d.wal_bytes, d.fsyncs, d.checkpoint_pages),
            (5, 136, 7, 1)
        );
        let s = later.clone() + earlier;
        assert_eq!(
            (s.wal_appends, s.wal_bytes, s.fsyncs, s.checkpoint_pages),
            (9, 264, 13, 11)
        );
        let shown = format!("{later}");
        assert!(shown.contains("10 fsyncs") && shown.contains("7 wal appends"));
    }

    #[test]
    fn add_accumulates() {
        let a = IoStats {
            hits: 1,
            seq_misses: 2,
            random_misses: 3,
            writes: 4,
            io_time: Duration::from_micros(5),
            ..IoStats::default()
        };
        let s = a.clone() + a;
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses(), 10);
        assert_eq!(s.accesses(), 12);
    }
}
