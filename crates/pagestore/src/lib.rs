//! Paged storage substrate with a deterministic buffer pool.
//!
//! The OIF paper ([Terrovitis et al., EDBT 2011]) measures index performance
//! as *disk page accesses reported as cache misses by the database* (Berkeley
//! DB with a 32 KiB cache) plus an I/O-vs-CPU time split. This crate
//! reproduces that measurement environment from scratch:
//!
//! * [`Disk`] — an in-memory array of fixed-size pages standing in for the
//!   hard disk. Multiple logical *files* (segments) live on one disk so that
//!   an index built from several structures (e.g. the OIF's B⁺-tree plus its
//!   metadata) shares one cache, exactly like a single Berkeley DB
//!   environment.
//! * [`BufferPool`] — an LRU page cache with a configurable byte budget
//!   (default 32 KiB, the paper's setting), internally synchronised with a
//!   sharded mapping table and per-frame pin latches so concurrent readers
//!   scale with cores (see the [`cache`](self) module docs). Every miss is
//!   classified as *sequential* (physical page id = previously fetched
//!   id + 1) or *random* and charged against an [`IoCostModel`], yielding
//!   a deterministic simulated I/O time alongside the miss counters.
//! * [`IoStats`] — the counters the experiment harness prints: cache hits,
//!   sequential misses, random misses, pages written, simulated I/O time.
//!
//! The pool is wrapped in [`Pager`], the handle the index crates use.
//! `Pager`, [`PageGuard`] and everything built on them (B⁺-tree cursors,
//! query evaluation) are `Send`/`Sync`: a batch of read-only queries can be
//! evaluated by a thread pool over one shared index.
//!
//! [Terrovitis et al., EDBT 2011]: https://doi.org/10.1145/1951365.1951394

// Library code must surface failures as typed errors (or `expect` a named
// invariant), never swallow them into an anonymous `unwrap` panic. Tests
// are exempt: there an unwrap *is* the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
pub mod commit;
mod cost;
mod disk;
mod error;
pub mod fault;
mod file;
mod frame;
pub mod par;
mod raw;
pub mod ser;
mod stats;
mod storage;
mod sync;
pub mod wal;

pub use cache::BufferPool;
#[cfg(not(feature = "model"))]
pub use commit::{Checkpointer, CheckpointerConfig};
pub use commit::{CommitQueue, CommitQueueStats};
pub use cost::IoCostModel;
pub use disk::{Disk, FileId, MemStorage, PageId, PAGE_SIZE};
pub use error::{Clock, PageError, RealClock, RetryPolicy, ScrubFinding, ScrubReport};
pub use fault::{FaultConfig, FaultDomain, FaultFile, FaultHandle, FaultStorage};
pub use file::{FileStorage, StorageLayout};
pub use par::{par_map, par_map_with};
pub use raw::{MemFile, OsFile, RawFile};
pub use stats::IoStats;
pub use storage::{PhysPage, Storage, StorageError};
pub use wal::{Wal, WalStats, WAL_MAGIC};

use frame::PinnedSlot;
use std::sync::Arc;

/// Shared handle to a buffer pool over a simulated disk.
///
/// `Pager` is cheaply clonable; all clones share the same cache and
/// statistics. All index structures in the workspace perform their page I/O
/// through this type so that an experiment can snapshot / reset one set of
/// counters per index.
///
/// The pool is internally synchronised: `Pager` (and its clones) may be
/// used from many threads at once. Cache *hits* — the hot path of
/// read-mostly query evaluation — take only a mapping-shard read latch plus
/// one atomic pin, so concurrent readers do not serialise; misses,
/// eviction and writes coordinate through a single policy lock.
#[derive(Clone)]
pub struct Pager {
    inner: Arc<BufferPool>,
}

impl Pager {
    /// Create a pager with the paper's default cache budget (32 KiB).
    pub fn new() -> Self {
        Self::with_cache_bytes(32 * 1024)
    }

    /// Create a pager whose cache holds `bytes / PAGE_SIZE` pages (at least
    /// one).
    pub fn with_cache_bytes(bytes: usize) -> Self {
        Self::with_pool(BufferPool::new(Disk::new(), bytes, IoCostModel::default()))
    }

    /// Create a pager over an explicit [`Storage`] backend — e.g. a
    /// [`FileStorage`] for indexes that must survive a restart — with a
    /// `bytes / PAGE_SIZE`-page cache.
    pub fn with_storage(storage: impl Storage + 'static, bytes: usize) -> Self {
        Self::with_pool(BufferPool::new(storage, bytes, IoCostModel::default()))
    }

    /// Create a pager from a fully configured pool.
    pub fn with_pool(pool: BufferPool) -> Self {
        Pager {
            inner: Arc::new(pool),
        }
    }

    /// Create a new logical file (segment) on the underlying disk.
    pub fn create_file(&self) -> FileId {
        self.inner.create_file()
    }

    /// Mutation hook for the model suite's teeth test (model builds only):
    /// see [`BufferPool::model_break_evictor_pin_recheck`].
    #[cfg(feature = "model")]
    pub fn model_break_evictor_pin_recheck(&self) {
        self.inner.model_break_evictor_pin_recheck()
    }

    /// Append a fresh zeroed page to `file`, returning its page id within the
    /// file. The new page is written through the cache.
    pub fn allocate_page(&self, file: FileId) -> PageId {
        self.inner.allocate_page(file)
    }

    /// Fallible twin of [`Pager::allocate_page`]: refused with
    /// [`PageError::ReadOnly`] when the pool is degraded.
    pub fn try_allocate_page(&self, file: FileId) -> Result<PageId, PageError> {
        self.inner.try_allocate_page(file)
    }

    /// Number of pages currently allocated to `file`.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.inner.file_len(file)
    }

    /// Read page `page` of `file` into `buf` (must be `PAGE_SIZE` long),
    /// going through the cache.
    pub fn read_page(&self, file: FileId, page: PageId, buf: &mut [u8]) {
        self.inner.read_page(file, page, buf)
    }

    /// Read a page and pass it to `f` without copying out of the cache frame.
    pub fn with_page<R>(&self, file: FileId, page: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.inner.with_page(file, page, f)
    }

    /// Pin page `page` of `file` in the cache and return a guard borrowing
    /// its bytes without copying.
    ///
    /// While the guard lives the frame is exempt from eviction and
    /// [`Pager::clear_cache`], and any [`Pager::write_page`] to it panics,
    /// so the guard's `&[u8]` view is stable. Pinning the same page again
    /// (same or cloned guard) is safe — frames are pin-*counted* — and
    /// guards may be sent to (and dropped on) other threads.
    ///
    /// The first `pin_page` of an uncached page costs one (counted) page
    /// access like any other read; re-pinning a cached page is a cache hit.
    /// Holding a guard across *other* page accesses can change which frame
    /// the pool evicts, so callers that must keep the paper's page-access
    /// counts reproducible (the B⁺-tree read path) drop the guard before
    /// fetching the next page.
    pub fn pin_page(&self, file: FileId, page: PageId) -> PageGuard {
        let pinned = self.inner.pin_slot(file, page);
        let phys = pinned.slot().phys();
        PageGuard { pinned, phys }
    }

    /// Fallible twin of [`Pager::pin_page`]: a page fault that fails even
    /// after the pool's [`RetryPolicy`] surfaces as a typed [`PageError`]
    /// naming the page — transient errors as
    /// [`Transient`](PageError::Transient), integrity failures as
    /// [`Corrupt`](PageError::Corrupt) (and the page is quarantined) —
    /// instead of panicking. The access pattern, pin semantics and page
    /// accounting are identical to `pin_page`.
    pub fn try_pin_page(&self, file: FileId, page: PageId) -> Result<PageGuard, PageError> {
        let pinned = self.inner.try_pin_slot(file, page)?;
        let phys = pinned.slot().phys();
        Ok(PageGuard { pinned, phys })
    }

    /// Fallible twin of [`Pager::read_page`].
    pub fn try_read_page(
        &self,
        file: FileId,
        page: PageId,
        buf: &mut [u8],
    ) -> Result<(), PageError> {
        self.inner.try_read_page(file, page, buf)
    }

    /// Fallible twin of [`Pager::with_page`] (`f` is not run on a fault).
    pub fn try_with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, PageError> {
        self.inner.try_with_page(file, page, f)
    }

    /// Overwrite page `page` of `file` with `data` (must be `PAGE_SIZE`
    /// long).
    pub fn write_page(&self, file: FileId, page: PageId, data: &[u8]) {
        self.inner.write_page(file, page, data)
    }

    /// Fallible twin of [`Pager::write_page`]: refused with
    /// [`PageError::ReadOnly`] when the pool is degraded (carrying the
    /// original write-back failure as the cause).
    pub fn try_write_page(&self, file: FileId, page: PageId, data: &[u8]) -> Result<(), PageError> {
        self.inner.try_write_page(file, page, data)
    }

    /// Opt this pager's pool in to (or out of) the concurrent write path —
    /// optimistic lock coupling over per-frame seqlocks, the foundation of
    /// the B⁺-tree's multi-writer `batch_insert`. Off by default: the
    /// single-writer path (and the paper's page-access counts) stay
    /// bit-for-bit unchanged. See [`Pager::try_with_page_mut`] and
    /// [`VersionedPage`].
    pub fn set_concurrent_writes(&self, on: bool) {
        self.inner.set_concurrent_writes(on)
    }

    /// Whether the concurrent write path is enabled on this pool.
    pub fn concurrent_writes(&self) -> bool {
        self.inner.concurrent_writes()
    }

    /// Mutation hook for the OLC model's teeth test (model builds only):
    /// see [`BufferPool::model_break_olc_version_check`].
    #[cfg(feature = "model")]
    pub fn model_break_olc_version_check(&self) {
        self.inner.model_break_olc_version_check()
    }

    /// Pin a page for *versioned* optimistic reads — the concurrent write
    /// path's read primitive. The returned handle holds a normal pin
    /// (same accounting as [`Pager::try_pin_page`]) but exposes the page
    /// only through seqlock-validated snapshots, which stay consistent
    /// even while a latched writer mutates the frame in place.
    pub fn try_pin_versioned(
        &self,
        file: FileId,
        page: PageId,
    ) -> Result<VersionedPage, PageError> {
        let pinned = self.inner.try_pin_versioned_slot(file, page)?;
        Ok(VersionedPage {
            pinned,
            checks: self.inner.olc_version_check_enabled(),
        })
    }

    /// Edit a page in place under its frame write latch — the concurrent
    /// write path's mutation primitive; see
    /// [`BufferPool::try_with_page_mut`] for the full contract. Refused
    /// with [`PageError::ReadOnly`] on a degraded pool, before any byte
    /// moves.
    pub fn try_with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, PageError> {
        self.inner.try_with_page_mut(file, page, f)
    }

    /// Snapshot the I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    /// Reset the I/O statistics (e.g. after an index build, before queries).
    pub fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    /// Drop every cached frame, so that the next accesses are cold. Used
    /// between queries to emulate the paper's "minimised caching effects"
    /// protocol.
    pub fn clear_cache(&self) {
        self.inner.clear_cache()
    }

    /// Total bytes allocated on the simulated disk across all files.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.total_pages() * PAGE_SIZE as u64
    }

    /// Store `bytes` under `key` in the storage catalog — the key→blob
    /// store index structures use for their non-paged state. Durable only
    /// after the next [`Pager::sync`].
    pub fn put_catalog(&self, key: &str, bytes: &[u8]) {
        self.inner.put_catalog(key, bytes)
    }

    /// Fetch the catalog entry under `key`.
    pub fn catalog(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.get_catalog(key)
    }

    /// All catalog keys, sorted.
    pub fn catalog_keys(&self) -> Vec<String> {
        self.inner.catalog_keys()
    }

    /// Flush every dirty cached page and make the backend durable
    /// (superblock + trailer + `sync_all` for [`FileStorage`]; a no-op
    /// flush for the in-memory backend). Frames stay cached.
    pub fn sync(&self) -> Result<(), StorageError> {
        self.inner.sync()
    }

    /// Fallible twin of [`Pager::sync`], surfacing the failure as a typed
    /// [`PageError::ReadOnly`] (any sync failure degrades the pool).
    pub fn try_sync(&self) -> Result<(), PageError> {
        self.inner.try_sync()
    }

    /// Group-committing durability barrier: concurrent callers coalesce
    /// onto one flush + commit flip and each returns with the durable
    /// storage epoch covering its writes. Semantically equivalent to
    /// [`Pager::try_sync`] (same flush, same degraded-mode behaviour) but
    /// N overlapping calls pay far fewer than N flips — see
    /// [`crate::commit`] and the commit bench.
    pub fn group_sync(&self) -> Result<u64, PageError> {
        self.inner.group_sync()
    }

    /// Group-commit counters (commits acknowledged, flushes actually
    /// run, waiter high-water mark).
    pub fn commit_queue_stats(&self) -> CommitQueueStats {
        self.inner.commit_queue_stats()
    }

    /// Flush up to `max_pages` dirty frames without a commit flip — the
    /// background checkpointer's work unit, also callable directly for
    /// deterministic tests. See [`BufferPool::checkpoint_slice`].
    pub fn checkpoint_slice(&self, max_pages: usize) -> Result<u64, PageError> {
        self.inner.checkpoint_slice(max_pages)
    }

    /// Spawn a background [`Checkpointer`] thread over this pager's pool.
    /// The returned handle owns the thread (clean shutdown on drop); see
    /// [`crate::commit`] for the protocol and the degraded-mode handoff.
    #[cfg(not(feature = "model"))]
    pub fn start_checkpointer(&self, cfg: CheckpointerConfig) -> Checkpointer {
        Checkpointer::spawn(self.inner.clone(), cfg)
    }

    /// Commit epoch of the backend's last durable sync (0 for the
    /// in-memory backend, which has no commit protocol).
    pub fn durable_epoch(&self) -> u64 {
        self.inner.durable_epoch()
    }

    /// Fold write-ahead-log activity into this pager's [`IoStats`]
    /// (`wal_appends` / `wal_bytes` / `fsyncs`), so one stats snapshot
    /// observes the whole commit pipeline. The [`Wal`] itself is a free-
    /// standing object (its records are not pages); its owner harvests
    /// [`Wal::take_stats`] and reports the deltas here.
    pub fn note_wal(&self, stats: WalStats) {
        self.inner
            .note_wal(stats.appends, stats.bytes, stats.fsyncs);
    }

    /// Leave degraded read-only mode after the medium healed (clears the
    /// sticky write-failure cause and any sticky group-commit failure).
    /// Returns whether the pool was degraded. Callers should verify the
    /// medium first — [`Pager::scrub`] + [`Pager::clear_quarantine`] —
    /// since a still-broken medium re-degrades on the next write-back.
    pub fn clear_degraded(&self) -> bool {
        self.inner.clear_degraded()
    }

    /// Replace the I/O cost model (defaults follow a ~2010 commodity disk).
    pub fn set_cost_model(&self, model: IoCostModel) {
        self.inner.set_cost_model(model)
    }

    /// Configure how transient page-fault read errors are retried (see
    /// [`RetryPolicy`]).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.inner.set_retry_policy(policy)
    }

    /// The current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.retry_policy()
    }

    /// Inject the time source used for retry backoff (tests pass a
    /// recording clock so retries spend no wall-clock time).
    pub fn set_retry_clock(&self, clock: Arc<dyn Clock>) {
        self.inner.set_retry_clock(clock)
    }

    /// `Some(cause)` when the pool is in degraded read-only mode after a
    /// failed write-back (reads keep serving; mutations return
    /// [`PageError::ReadOnly`]).
    pub fn degraded(&self) -> Option<Arc<str>> {
        self.inner.degraded()
    }

    /// Forget every quarantined page (e.g. after restoring the backing
    /// file); returns how many were forgotten.
    pub fn clear_quarantine(&self) -> usize {
        self.inner.clear_quarantine()
    }

    /// Walk every allocated page, verify readability and integrity, and
    /// report corrupt / unreadable / quarantined pages. Bypasses the cache
    /// (no counters move); see [`BufferPool::scrub`].
    pub fn scrub(&self) -> ScrubReport {
        self.inner.scrub()
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

/// A pin on one cached page, borrowing its bytes without copying.
///
/// Obtained from [`Pager::pin_page`]. The guard holds the frame's pin
/// latch (an atomic count on the frame slot), which keeps the page buffer
/// alive, unmoved and unwritten; [`PageGuard::bytes`] — or the `Deref`
/// impl — yields the page contents directly out of the buffer-pool frame.
/// Dropping the guard releases the pin with a single atomic decrement (no
/// pool lock), including during unwinding.
///
/// Guards are `Send` and `Sync`: the pinned bytes are immutable while any
/// pin is outstanding, so views may cross threads freely — this is what
/// makes B⁺-tree cursors (and the query evaluation built on them) usable
/// from a thread pool.
pub struct PageGuard {
    pinned: PinnedSlot,
    phys: u64,
}

impl PageGuard {
    /// The pinned page's bytes (always `PAGE_SIZE` long).
    pub fn bytes(&self) -> &[u8] {
        self.pinned.bytes()
    }
}

impl Clone for PageGuard {
    fn clone(&self) -> Self {
        PageGuard {
            // Re-pins the frame, so its pin count matches the number of
            // live guards.
            pinned: self.pinned.clone(),
            phys: self.phys,
        }
    }
}

impl std::ops::Deref for PageGuard {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("phys", &self.phys)
            .finish()
    }
}

/// A pin on one cached page exposing **versioned** reads for the
/// concurrent write path (optimistic lock coupling).
///
/// Obtained from [`Pager::try_pin_versioned`]. Unlike [`PageGuard`] it
/// never hands out a borrow of the frame bytes — a latched writer
/// ([`Pager::try_with_page_mut`]) may be mutating them in place at any
/// moment. Instead, [`VersionedPage::snapshot_into`] copies a
/// *seqlock-consistent* image of the page into a caller buffer and
/// returns the content version it reflects; [`VersionedPage::validate`]
/// later re-checks that version, which is how an OLC descent detects that
/// a node changed under it and must restart.
///
/// The pin protects the frame from eviction and recycling, so the content
/// version is always compared against the same page incarnation.
pub struct VersionedPage {
    pinned: PinnedSlot,
    /// Whether snapshots/validation actually check the seqlock — always,
    /// except under the model suite's `model_break_olc_version_check`
    /// mutation hook.
    checks: bool,
}

impl VersionedPage {
    /// The page's current content version (even when no latched writer is
    /// active).
    pub fn version(&self) -> u64 {
        self.pinned.slot().content_version()
    }

    /// Copy a consistent image of the page into `out` and return the
    /// content version it reflects: a few lock-free optimistic attempts,
    /// then a blocking shared-latch copy (so the call always succeeds and
    /// stays finite under the model checker). Callers must not hold the
    /// pool's policy lock.
    pub fn snapshot_into(&self, out: &mut [u8; PAGE_SIZE]) -> u64 {
        if !self.checks {
            // Mutation-hook mode: raw unvalidated copy — torn reads become
            // possible, which is exactly what the model's teeth test must
            // catch.
            let slot = self.pinned.slot();
            out.copy_from_slice(self.pinned.bytes());
            return slot.content_version();
        }
        self.pinned.slot().snapshot_into(out)
    }

    /// Whether the page content is still at `version` — the OLC
    /// re-validation step: `false` means a latched writer committed (or is
    /// committing) a change since the snapshot, and the caller must
    /// restart its descent.
    pub fn validate(&self, version: u64) -> bool {
        !self.checks || self.pinned.slot().content_version() == version
    }
}

impl std::fmt::Debug for VersionedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedPage")
            .field("phys", &self.pinned.slot().phys())
            .field("version", &self.version())
            .finish()
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("files", &self.inner.file_count())
            .field("pages", &self.inner.total_pages())
            .field("stats", &self.inner.stats())
            .finish()
    }
}

// Compile-time proof of the threading contract: the pager, its guards and
// the pool are usable from (and shareable across) threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pager>();
    assert_send_sync::<PageGuard>();
    assert_send_sync::<VersionedPage>();
    assert_send_sync::<BufferPool>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pager_roundtrip() {
        let pager = Pager::new();
        let f = pager.create_file();
        let p = pager.allocate_page(f);
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 42;
        data[PAGE_SIZE - 1] = 7;
        pager.write_page(f, p, &data);
        let mut out = vec![0u8; PAGE_SIZE];
        pager.read_page(f, p, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn stats_count_misses_after_cache_clear() {
        let pager = Pager::with_cache_bytes(PAGE_SIZE * 2);
        let f = pager.create_file();
        for _ in 0..4 {
            pager.allocate_page(f);
        }
        pager.reset_stats();
        pager.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..4 {
            pager.read_page(f, p, &mut buf);
        }
        let s = pager.stats();
        assert_eq!(s.misses(), 4);
        // First access is random, the rest follow physically contiguous pages.
        assert_eq!(s.random_misses, 1);
        assert_eq!(s.seq_misses, 3);
    }

    #[test]
    fn clones_share_state() {
        let pager = Pager::new();
        let f = pager.create_file();
        let p = pager.allocate_page(f);
        let clone = pager.clone();
        let mut data = vec![0u8; PAGE_SIZE];
        data[10] = 99;
        clone.write_page(f, p, &data);
        let mut out = vec![0u8; PAGE_SIZE];
        pager.read_page(f, p, &mut out);
        assert_eq!(out[10], 99);
    }

    #[test]
    fn guard_outlives_pager_handle() {
        // The guard's Arc keeps the pinned frame alive independently of the
        // handle it came from.
        let pager = Pager::new();
        let f = pager.create_file();
        let p = pager.allocate_page(f);
        let mut data = vec![0u8; PAGE_SIZE];
        data[3] = 33;
        pager.write_page(f, p, &data);
        let guard = pager.pin_page(f, p);
        drop(pager);
        assert_eq!(guard[3], 33);
    }

    #[test]
    fn guard_can_cross_threads() {
        let pager = Pager::new();
        let f = pager.create_file();
        let p = pager.allocate_page(f);
        let mut data = vec![0u8; PAGE_SIZE];
        data[7] = 77;
        pager.write_page(f, p, &data);
        let guard = pager.pin_page(f, p);
        let byte = std::thread::spawn(move || guard[7]).join().unwrap();
        assert_eq!(byte, 77);
    }
}
