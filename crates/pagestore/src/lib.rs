//! Paged storage substrate with a deterministic buffer pool.
//!
//! The OIF paper ([Terrovitis et al., EDBT 2011]) measures index performance
//! as *disk page accesses reported as cache misses by the database* (Berkeley
//! DB with a 32 KiB cache) plus an I/O-vs-CPU time split. This crate
//! reproduces that measurement environment from scratch:
//!
//! * [`Disk`] — an in-memory array of fixed-size pages standing in for the
//!   hard disk. Multiple logical *files* (segments) live on one disk so that
//!   an index built from several structures (e.g. the OIF's B⁺-tree plus its
//!   metadata) shares one cache, exactly like a single Berkeley DB
//!   environment.
//! * [`BufferPool`] — an LRU page cache with a configurable byte budget
//!   (default 32 KiB, the paper's setting). Every miss is classified as
//!   *sequential* (physical page id = previously fetched id + 1) or *random*
//!   and charged against an [`IoCostModel`], yielding a deterministic
//!   simulated I/O time alongside the miss counters.
//! * [`IoStats`] — the counters the experiment harness prints: cache hits,
//!   sequential misses, random misses, pages written, simulated I/O time.
//!
//! The pool is wrapped in [`Pager`], the handle the index crates use.
//!
//! [Terrovitis et al., EDBT 2011]: https://doi.org/10.1145/1951365.1951394

mod cache;
mod cost;
mod disk;
mod stats;

pub use cache::BufferPool;
pub use cost::IoCostModel;
pub use disk::{Disk, FileId, PageId, PAGE_SIZE};
pub use stats::IoStats;

use parking_lot::Mutex;
use std::ptr::NonNull;
use std::sync::Arc;

/// Shared handle to a buffer pool over a simulated disk.
///
/// `Pager` is cheaply clonable; all clones share the same cache and
/// statistics. All index structures in the workspace perform their page I/O
/// through this type so that an experiment can snapshot / reset one set of
/// counters per index.
#[derive(Clone)]
pub struct Pager {
    inner: Arc<Mutex<BufferPool>>,
}

impl Pager {
    /// Create a pager with the paper's default cache budget (32 KiB).
    pub fn new() -> Self {
        Self::with_cache_bytes(32 * 1024)
    }

    /// Create a pager whose cache holds `bytes / PAGE_SIZE` pages (at least
    /// one).
    pub fn with_cache_bytes(bytes: usize) -> Self {
        Self::with_pool(BufferPool::new(Disk::new(), bytes, IoCostModel::default()))
    }

    /// Create a pager from a fully configured pool.
    pub fn with_pool(pool: BufferPool) -> Self {
        Pager {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Create a new logical file (segment) on the underlying disk.
    pub fn create_file(&self) -> FileId {
        self.inner.lock().disk_mut().create_file()
    }

    /// Append a fresh zeroed page to `file`, returning its page id within the
    /// file. The new page is written through the cache.
    pub fn allocate_page(&self, file: FileId) -> PageId {
        self.inner.lock().allocate_page(file)
    }

    /// Number of pages currently allocated to `file`.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.inner.lock().disk().file_len(file)
    }

    /// Read page `page` of `file` into `buf` (must be `PAGE_SIZE` long),
    /// going through the cache.
    pub fn read_page(&self, file: FileId, page: PageId, buf: &mut [u8]) {
        self.inner.lock().read_page(file, page, buf)
    }

    /// Read a page and pass it to `f` without copying out of the cache frame.
    pub fn with_page<R>(&self, file: FileId, page: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.inner.lock().with_page(file, page, f)
    }

    /// Pin page `page` of `file` in the cache and return a guard borrowing
    /// its bytes without copying.
    ///
    /// While the guard lives the frame is exempt from eviction and
    /// [`Pager::clear_cache`], and any [`Pager::write_page`] to it panics,
    /// so the guard's `&[u8]` view is stable. Pinning the same page again
    /// (same or cloned guard) is safe — frames are pin-*counted*.
    ///
    /// The first `pin_page` of an uncached page costs one (counted) page
    /// access like any other read; re-pinning a cached page is a cache hit.
    /// Holding a guard across *other* page accesses can change which frame
    /// the pool evicts, so callers that must keep the paper's page-access
    /// counts reproducible (the B⁺-tree read path) drop the guard before
    /// fetching the next page.
    pub fn pin_page(&self, file: FileId, page: PageId) -> PageGuard {
        let (ptr, phys) = self.inner.lock().pin(file, page);
        PageGuard {
            pager: self.clone(),
            ptr,
            phys,
        }
    }

    /// Overwrite page `page` of `file` with `data` (must be `PAGE_SIZE`
    /// long).
    pub fn write_page(&self, file: FileId, page: PageId, data: &[u8]) {
        self.inner.lock().write_page(file, page, data)
    }

    /// Snapshot the I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats().clone()
    }

    /// Reset the I/O statistics (e.g. after an index build, before queries).
    pub fn reset_stats(&self) {
        self.inner.lock().reset_stats()
    }

    /// Drop every cached frame, so that the next accesses are cold. Used
    /// between queries to emulate the paper's "minimised caching effects"
    /// protocol.
    pub fn clear_cache(&self) {
        self.inner.lock().clear_cache()
    }

    /// Total bytes allocated on the simulated disk across all files.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.lock().disk().total_pages() * PAGE_SIZE as u64
    }

    /// Replace the I/O cost model (defaults follow a ~2010 commodity disk).
    pub fn set_cost_model(&self, model: IoCostModel) {
        self.inner.lock().set_cost_model(model)
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

/// A pin on one cached page, borrowing its bytes without copying.
///
/// Obtained from [`Pager::pin_page`]. The guard keeps the pool alive (it
/// holds a `Pager` clone) and the frame pinned; [`PageGuard::bytes`] —
/// or the `Deref` impl — yields the page contents directly out of the
/// buffer pool's frame. Dropping the guard releases the pin.
pub struct PageGuard {
    pager: Pager,
    ptr: NonNull<[u8; PAGE_SIZE]>,
    phys: u64,
}

impl PageGuard {
    /// The pinned page's bytes (always `PAGE_SIZE` long).
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the pool guarantees a pinned frame's buffer is neither
        // freed, recycled nor written while its pin count is non-zero, and
        // the pool itself outlives `self.pager`.
        unsafe { &self.ptr.as_ref()[..] }
    }
}

impl Clone for PageGuard {
    fn clone(&self) -> Self {
        let mut pool = self.pager.inner.lock();
        // Re-pin through the pool so the frame's pin count matches the
        // number of live guards.
        pool.repin(self.phys);
        PageGuard {
            pager: self.pager.clone(),
            ptr: self.ptr,
            phys: self.phys,
        }
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.pager.inner.lock().unpin(self.phys);
    }
}

impl std::ops::Deref for PageGuard {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard").field("phys", &self.phys).finish()
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Pager")
            .field("files", &g.disk().file_count())
            .field("pages", &g.disk().total_pages())
            .field("stats", g.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pager_roundtrip() {
        let pager = Pager::new();
        let f = pager.create_file();
        let p = pager.allocate_page(f);
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 42;
        data[PAGE_SIZE - 1] = 7;
        pager.write_page(f, p, &data);
        let mut out = vec![0u8; PAGE_SIZE];
        pager.read_page(f, p, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn stats_count_misses_after_cache_clear() {
        let pager = Pager::with_cache_bytes(PAGE_SIZE * 2);
        let f = pager.create_file();
        for _ in 0..4 {
            pager.allocate_page(f);
        }
        pager.reset_stats();
        pager.clear_cache();
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..4 {
            pager.read_page(f, p, &mut buf);
        }
        let s = pager.stats();
        assert_eq!(s.misses(), 4);
        // First access is random, the rest follow physically contiguous pages.
        assert_eq!(s.random_misses, 1);
        assert_eq!(s.seq_misses, 3);
    }

    #[test]
    fn clones_share_state() {
        let pager = Pager::new();
        let f = pager.create_file();
        let p = pager.allocate_page(f);
        let clone = pager.clone();
        let mut data = vec![0u8; PAGE_SIZE];
        data[10] = 99;
        clone.write_page(f, p, &data);
        let mut out = vec![0u8; PAGE_SIZE];
        pager.read_page(f, p, &mut out);
        assert_eq!(out[10], 99);
    }
}
