//! Typed page-fault errors, the transient-fault retry policy, and the
//! scrub report — the vocabulary of the fallible read path.
//!
//! The buffer pool's historical contract was "storage errors abort the
//! process": a flaky sector during a page fault panicked inside
//! [`BufferPool`](crate::BufferPool) and took every in-flight query with
//! it. The fallible path (`try_pin_page` / `try_write_page` / `try_sync`
//! and the `try_*` twins up the stack) turns those aborts into values:
//!
//! * **transient** failures (`EIO`-style hiccups, short reads) are retried
//!   under a bounded, deterministic [`RetryPolicy`] before surfacing as
//!   [`PageError::Transient`] — a later retry of the same query may
//!   succeed;
//! * **corruption** (a page checksum mismatch) is never retried — re-reading
//!   rotten bits is wasted I/O — and quarantines the page, so every later
//!   access fails fast with [`PageError::Corrupt`] naming the page;
//! * a failed **write-back** flips the pool into degraded *read-only* mode:
//!   reads keep serving from cache and disk, every mutation returns
//!   [`PageError::ReadOnly`] carrying the original cause.
//!
//! [`ScrubReport`] is the operator-facing half: `scrub()` walks every
//! reachable page, verifies checksums, and reports exactly which pages are
//! corrupt or quarantined.

use crate::disk::{FileId, PageId};
use crate::storage::PhysPage;
use std::sync::Arc;
use std::time::Duration;

/// A page-level fault surfaced by the fallible (`try_*`) read path.
///
/// Every variant names the page so one corrupt leaf fails one query with a
/// diagnosable error — never the whole process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// A page fault failed with a transient I/O error even after the
    /// configured retries. The page itself may be fine — retrying the
    /// query later can succeed.
    Transient {
        file: FileId,
        page: PageId,
        phys: PhysPage,
        /// Read attempts made (1 initial + retries) before giving up.
        attempts: u32,
        /// The last underlying error, rendered.
        cause: String,
    },
    /// The page failed its integrity check (bit rot, torn write). The
    /// page is quarantined: every later access fails fast with this
    /// error until the quarantine is cleared.
    Corrupt {
        file: FileId,
        page: PageId,
        phys: PhysPage,
        cause: String,
    },
    /// A non-transient, non-corruption I/O failure (e.g. permission
    /// denied). Not retried, not quarantined.
    Io {
        file: FileId,
        page: PageId,
        phys: PhysPage,
        cause: String,
    },
    /// The pool is in degraded read-only mode after a failed write-back;
    /// the mutation was refused. Reads keep serving.
    ReadOnly {
        /// The original write-back failure that degraded the pool.
        cause: Arc<str>,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Transient {
                file,
                page,
                phys,
                attempts,
                cause,
            } => write!(
                f,
                "read of page {page} of {file:?} (physical page {phys}) failed after \
                 {attempts} attempt(s): {cause}"
            ),
            PageError::Corrupt {
                file,
                page,
                phys,
                cause,
            } => write!(
                f,
                "page {page} of {file:?} (physical page {phys}) is corrupt and quarantined: \
                 {cause}"
            ),
            PageError::Io {
                file,
                page,
                phys,
                cause,
            } => write!(
                f,
                "read of page {page} of {file:?} (physical page {phys}) failed: {cause}"
            ),
            PageError::ReadOnly { cause } => write!(
                f,
                "buffer pool is in degraded read-only mode after a failed write-back \
                 ({cause}); mutations are refused, reads keep serving"
            ),
        }
    }
}

impl std::error::Error for PageError {}

/// Bounded, deterministic retry policy for *transient* page-fault read
/// errors.
///
/// A fault is attempted up to `attempts` times total; before retry *k*
/// (1-based) the configured [`Clock`] sleeps `backoff << (k - 1)` — a
/// doubling backoff whose whole sequence is a pure function of this
/// struct, so tests can pin it exactly under an injected clock.
/// Corruption is never retried, and the policy costs nothing when no
/// fault occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts (minimum 1 — the initial try).
    pub attempts: u32,
    /// Delay before the first retry; doubles on each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts with a 1 ms initial backoff — absorbs one-shot
    /// hiccups without stalling a genuinely failing device for long.
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// No retries: every transient error surfaces immediately.
    pub const fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// The delay slept before 1-based retry `retry` (deterministic
    /// doubling, saturating so huge retry counts cannot overflow).
    pub fn backoff_before(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(16);
        self.backoff.saturating_mul(1u32 << shift)
    }
}

/// Injectable time source for retry backoff — production sleeps on the
/// wall clock, tests record the requested delays instead (no wall-clock
/// time in tests).
pub trait Clock: Send + Sync {
    fn sleep(&self, d: Duration);
}

/// The production [`Clock`]: `std::thread::sleep`, skipping zero delays.
pub struct RealClock;

impl Clock for RealClock {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// One damaged page found by `scrub()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    pub file: FileId,
    pub page: PageId,
    pub phys: PhysPage,
    /// The verification failure, rendered.
    pub cause: String,
}

/// Result of walking every reachable page and verifying its integrity
/// (`Pager::scrub` / the indexes' `scrub()` delegates).
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Pages visited (every allocated page of every file).
    pub pages_checked: u64,
    /// Pages whose integrity check failed (now quarantined).
    pub corrupt: Vec<ScrubFinding>,
    /// Pages that could not be read at all (I/O errors after retries).
    pub unreadable: Vec<ScrubFinding>,
    /// Quarantined pages (`(file, page, phys)`), including ones found by
    /// earlier faults, sorted by physical page.
    pub quarantined: Vec<(FileId, PageId, PhysPage)>,
}

impl ScrubReport {
    /// True when every page verified and nothing is quarantined.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.unreadable.is_empty() && self.quarantined.is_empty()
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} page(s) checked, {} corrupt, {} unreadable, {} quarantined",
            self.pages_checked,
            self.corrupt.len(),
            self.unreadable.len(),
            self.quarantined.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_sequence_doubles_deterministically() {
        let p = RetryPolicy {
            attempts: 5,
            backoff: Duration::from_millis(2),
        };
        let seq: Vec<Duration> = (1..5).map(|k| p.backoff_before(k)).collect();
        assert_eq!(
            seq,
            vec![
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(8),
                Duration::from_millis(16),
            ]
        );
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            attempts: u32::MAX,
            backoff: Duration::from_secs(u64::MAX / 4),
        };
        // Huge retry indices clamp the shift and saturate the multiply.
        let d = p.backoff_before(1000);
        assert!(d >= p.backoff);
    }

    #[test]
    fn errors_name_the_page() {
        let e = PageError::Corrupt {
            file: FileId(2),
            page: 7,
            phys: 40,
            cause: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("page 7") && msg.contains("FileId(2)") && msg.contains("40"));
        assert!(msg.contains("quarantined"));
    }
}
