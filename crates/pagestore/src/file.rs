//! The durable storage backend: one real file on disk, **crash-atomic**
//! via shadow paging (format v2).
//!
//! ## On-disk format (v2, written by [`FileStorage::create`])
//!
//! ```text
//! offset 0                superblock slot A (72 bytes used)
//! offset PAGE_SIZE/2      superblock slot B (72 bytes used)
//!   each slot: [ magic "OIFSTOR1" : 8 ][ version : u32 ][ page size : u32 ]
//!              [ epoch : u64 ][ logical pages : u64 ][ slot count : u64 ]
//!              [ trailer slot : u64 ][ trailer len : u64 ]
//!              [ trailer checksum : u64 ][ superblock checksum : u64 ]
//! offset PAGE_SIZE        slot region: physical slot s at
//!                         PAGE_SIZE + s * PAGE_SIZE
//! somewhere in the slot region (per the live superblock):
//!                         trailer:
//!   file table     — per logical file, its ordered logical-page list
//!   slot table     — logical physical page → slot (NO_SLOT = never
//!                    written; such pages read as zeros)
//!   checksum table — one FNV-1a 64 per logical physical page
//!   catalog        — key → blob entries (index non-paged state)
//!   free-slot list — slots referenced by neither the slot table nor,
//!                    once this epoch commits, anything else (the dead
//!                    slots of the previous epoch, reclaimed by GC)
//! ```
//!
//! ### Shadow paging
//!
//! The buffer pool addresses pages by *logical* physical page number
//! ([`PhysPage`], allocation order — identical to
//! [`MemStorage`](crate::MemStorage), so cache keys and the paper's
//! sequential/random miss classification never depend on the backend).
//! Where a page's bytes actually live is a *slot*, and a page's slot
//! changes on every rewrite: [`Storage::write_phys`] never overwrites a
//! slot reachable from the last committed trailer — it writes to a fresh
//! slot from the free list (or extends the slot region) and only the
//! in-memory slot table learns the new location. Rewriting the same page
//! again before the next commit reuses its shadow slot in place (that slot
//! is not yet committed to anything).
//!
//! ### Commit protocol ([`Storage::sync`])
//!
//! 1. serialize the trailer and write it to free slots (never slots the
//!    committed epoch can reach);
//! 2. `sync_all` — every shadow page and the new trailer are durable
//!    before any superblock changes;
//! 3. write the new superblock — epoch *e+1*, pointing at the new trailer
//!    — into slot `(e+1) % 2`, i.e. over the *older* of the two
//!    superblocks, never the live one;
//! 4. `sync_all` again, making the flip durable;
//! 5. in memory: the previous epoch's now-unreachable slots (old page
//!    versions, the old trailer) join the free list — the epoch GC.
//!
//! A crash at **any** physical I/O boundary (and a torn write of the
//! in-flight operation) therefore leaves either the old epoch fully
//! intact (steps 1–3 touch nothing it references; a torn superblock write
//! only garbles the *older* slot, which recovery rejects by checksum) or
//! the new epoch fully durable (step 3 completed). Recovery reads both
//! superblock slots and restores the newest one that passes its checksum
//! *and* whose trailer loads — so even a later-corrupted live trailer
//! falls back to the previous epoch when that epoch is still intact.
//! `crates/pagestore/tests/fault.rs` and the workspace
//! `tests/crash_recovery.rs` prove this exhaustively by replaying
//! recovery at every I/O-op prefix of whole build→sync→mutate→sync runs.
//!
//! ## Legacy format v1 (read- and write-compatible)
//!
//! Files created before shadow paging have one superblock (slot A,
//! version 1), pages written *in place* at `PAGE_SIZE * (1 + phys)` and a
//! single trailer after the page region, rewritten by every sync. They
//! keep opening, reading and writing exactly as before — including the
//! old contract that a crash between syncs fails loudly by checksum
//! rather than recovering — via [`FileStorage::create_v1`] and the
//! version sniff in [`FileStorage::open`]. The `sync` bench uses the v1
//! path as the in-place baseline against the v2 shadow overhead.
//!
//! Every page read verifies the page's checksum from the table, so bit rot
//! or a torn write surfaces as [`StorageError::ChecksumMismatch`] naming
//! the page — never as silently garbage query results.

use crate::disk::{FileId, PageId, PAGE_SIZE};
use crate::raw::{MemFile, OsFile, RawFile};
use crate::ser::{Reader, Writer};
use crate::storage::{fnv1a, PhysPage, Storage, StorageError};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const MAGIC: &[u8; 8] = b"OIFSTOR1";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
/// Serialized v1 superblock length (the rest of page 0 is reserved).
const SUPERBLOCK_LEN_V1: usize = 60;
/// Serialized v2 superblock length.
const SUPERBLOCK_LEN_V2: usize = 72;
/// Byte offsets of the two v2 superblock slots (both inside reserved
/// page 0; a v1 file has zeros at slot B, which never parses).
const SB_SLOT_OFFSETS: [u64; 2] = [0, (PAGE_SIZE / 2) as u64];
/// Slot-table sentinel: the page was never written and reads as zeros.
const NO_SLOT: u64 = u64::MAX;

/// Checksum of an all-zero page (what `allocate_page` promises before the
/// first write), computed once.
fn zero_page_checksum() -> u64 {
    static CK: OnceLock<u64> = OnceLock::new();
    *CK.get_or_init(|| fnv1a(&[0u8; PAGE_SIZE]))
}

/// Shadow-paging state (format v2 only; `None` means the file is v1 and
/// pages are rewritten in place).
struct ShadowState {
    /// Last committed epoch.
    epoch: u64,
    /// Slot high-water mark: slots `0..slot_count` exist in the file.
    slot_count: u64,
    /// Logical phys page → slot holding its *current* image.
    slots: Vec<u64>,
    /// Logical phys page → slot at the last committed epoch (indices past
    /// its end are pages allocated since; treated as [`NO_SLOT`]).
    committed_slots: Vec<u64>,
    /// Slots referenced by neither the committed epoch nor the current
    /// in-memory state — the only slots writes may claim.
    free: BTreeSet<u64>,
}

impl ShadowState {
    fn committed_slot(&self, phys: PhysPage) -> u64 {
        self.committed_slots
            .get(phys as usize)
            .copied()
            .unwrap_or(NO_SLOT)
    }

    /// Claim one free slot (lowest first, for write locality), extending
    /// the slot region when none is free.
    fn take_free_slot(&mut self) -> u64 {
        match self.free.pop_first() {
            Some(s) => s,
            None => {
                let s = self.slot_count;
                self.slot_count += 1;
                s
            }
        }
    }

    /// Claim `k` *contiguous* free slots (the trailer is addressed by one
    /// `(slot, len)` pair in the superblock), extending when no run fits.
    fn take_free_run(&mut self, k: u64) -> u64 {
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        let mut found: Option<u64> = None;
        for &s in self.free.iter() {
            match run_start {
                Some(start) if s == start + run_len => run_len += 1,
                _ => {
                    run_start = Some(s);
                    run_len = 1;
                }
            }
            if run_len == k {
                found = Some(run_start.expect("a full run implies a recorded start"));
                break;
            }
        }
        match found {
            Some(start) => {
                for s in start..start + k {
                    self.free.remove(&s);
                }
                start
            }
            None => {
                let start = self.slot_count;
                self.slot_count += k;
                start
            }
        }
    }
}

/// A [`Storage`] backend over one checksummed file. See the module docs
/// for the layout and the crash-atomicity contract.
pub struct FileStorage {
    file: Box<dyn RawFile>,
    path: PathBuf,
    /// `(file, page) → phys` table: `files[f][p]` is the logical physical
    /// page.
    files: Vec<Vec<PhysPage>>,
    /// Per-logical-physical-page FNV-1a checksum (persisted in the
    /// trailer).
    checksums: Vec<u64>,
    /// Catalog blobs; `BTreeMap` so serialization order is deterministic.
    catalog: BTreeMap<String, Vec<u8>>,
    /// Shadow-paging state — `Some` for v2 files, `None` for legacy v1.
    shadow: Option<ShadowState>,
    /// Set when a commit failed partway through its I/O: the in-memory
    /// slot bookkeeping and the file may then disagree about which slots
    /// the durable epoch reaches, so continuing to write could overwrite
    /// slots a partially-flipped epoch references — silently destroying
    /// *both* epochs. All further mutation is refused
    /// ([`StorageError::Poisoned`]); reopening the file runs recovery.
    poisoned: Option<String>,
}

/// One parsed, checksum-valid superblock slot.
enum SbInfo {
    V1 {
        total_pages: u64,
        trailer_off: u64,
        trailer_len: u64,
        trailer_checksum: u64,
    },
    V2 {
        epoch: u64,
        total_pages: u64,
        slot_count: u64,
        trailer_slot: u64,
        trailer_len: u64,
        trailer_checksum: u64,
    },
}

impl SbInfo {
    fn epoch(&self) -> u64 {
        match self {
            SbInfo::V1 { .. } => 0,
            SbInfo::V2 { epoch, .. } => *epoch,
        }
    }
}

/// Parse one superblock slot. `Ok(info)` only when magic, version, page
/// size and self-checksum all hold; `Err` explains the failure (used for
/// the error message when *no* slot is valid).
fn parse_superblock(raw: &[u8]) -> Result<SbInfo, StorageError> {
    if raw.len() < SUPERBLOCK_LEN_V1 {
        return Err(StorageError::BadSuperblock(format!(
            "short superblock slot ({} byte(s))",
            raw.len()
        )));
    }
    if &raw[..8] != MAGIC {
        return Err(StorageError::BadSuperblock(format!(
            "bad magic {:02x?} (not a storage file?)",
            &raw[..8]
        )));
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().expect("4-byte slice"));
    let body_len = match version {
        VERSION_V1 => SUPERBLOCK_LEN_V1,
        VERSION_V2 => SUPERBLOCK_LEN_V2,
        other => {
            return Err(StorageError::BadSuperblock(format!(
                "version {other} (this build reads {VERSION_V1} and {VERSION_V2})"
            )))
        }
    };
    if raw.len() < body_len {
        return Err(StorageError::BadSuperblock(format!(
            "short v{version} superblock slot ({} byte(s))",
            raw.len()
        )));
    }
    let expected = u64::from_le_bytes(
        raw[body_len - 8..body_len]
            .try_into()
            .expect("8-byte slice"),
    );
    let actual = fnv1a(&raw[..body_len - 8]);
    if expected != actual {
        return Err(StorageError::ChecksumMismatch {
            what: "superblock".into(),
            expected,
            actual,
        });
    }
    let mut r = Reader::new(&raw[12..body_len - 8]);
    let page_size = r.u32().expect("body length checked above");
    if page_size != PAGE_SIZE as u32 {
        return Err(StorageError::BadSuperblock(format!(
            "page size {page_size} (this build uses {PAGE_SIZE})"
        )));
    }
    Ok(match version {
        VERSION_V1 => SbInfo::V1 {
            total_pages: r.u64().expect("body length checked above"),
            trailer_off: r.u64().expect("body length checked above"),
            trailer_len: r.u64().expect("body length checked above"),
            trailer_checksum: r.u64().expect("body length checked above"),
        },
        _ => SbInfo::V2 {
            epoch: r.u64().expect("body length checked above"),
            total_pages: r.u64().expect("body length checked above"),
            slot_count: r.u64().expect("body length checked above"),
            trailer_slot: r.u64().expect("body length checked above"),
            trailer_len: r.u64().expect("body length checked above"),
            trailer_checksum: r.u64().expect("body length checked above"),
        },
    })
}

impl FileStorage {
    /// Create a fresh shadow-paged (v2) storage file at `path`, truncating
    /// any existing file, and commit its empty epoch 0.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Self::create_on_at(Box::new(OsFile::new(file)), path)
    }

    /// Create a fresh v2 storage over any [`RawFile`] (assumed empty) —
    /// how the fault harness builds storage over a
    /// [`FaultFile`](crate::fault::FaultFile).
    pub fn create_on(file: Box<dyn RawFile>) -> Result<Self, StorageError> {
        Self::create_on_at(file, PathBuf::from("<raw>"))
    }

    fn create_on_at(file: Box<dyn RawFile>, path: PathBuf) -> Result<Self, StorageError> {
        let mut storage = FileStorage {
            file,
            path,
            files: Vec::new(),
            checksums: Vec::new(),
            catalog: BTreeMap::new(),
            shadow: Some(ShadowState {
                epoch: 0,
                slot_count: 0,
                slots: Vec::new(),
                committed_slots: Vec::new(),
                free: BTreeSet::new(),
            }),
            poisoned: None,
        };
        // A created-but-never-synced file must still be recognisably ours
        // (and openable as empty), so commit epoch 0 immediately.
        storage.commit_v2(0)?;
        Ok(storage)
    }

    /// Create a *legacy v1* (in-place, non-crash-atomic) storage file.
    /// Kept writable so the pre-shadow compatibility path is covered by
    /// tests without binary fixtures, and so the `sync` bench can measure
    /// the in-place baseline against the v2 shadow overhead.
    pub fn create_v1(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut storage = FileStorage {
            file: Box::new(OsFile::new(file)),
            path,
            files: Vec::new(),
            checksums: Vec::new(),
            catalog: BTreeMap::new(),
            shadow: None,
            poisoned: None,
        };
        storage.sync_v1()?;
        Ok(storage)
    }

    /// Open an existing storage file (either format), verifying superblock
    /// and trailer checksums and restoring the tables and catalog. Page
    /// payloads are *not* read here — they are verified lazily, page by
    /// page, as the buffer pool faults them in.
    ///
    /// v2 recovery: of the two superblock slots, the newest checksum-valid
    /// one whose trailer also loads wins; a valid-but-trailerless epoch
    /// falls back to the other slot (the previous epoch) when possible.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        Self::open_on_at(Box::new(OsFile::new(file)), path)
    }

    /// Open over any [`RawFile`] — how the fault harness reopens frozen
    /// crash images.
    pub fn open_on(file: Box<dyn RawFile>) -> Result<Self, StorageError> {
        Self::open_on_at(file, PathBuf::from("<raw>"))
    }

    /// Open a frozen byte image as a storage file, in memory. The result
    /// stays fully writable (a recovered storage can sync again), backed
    /// by a [`MemFile`].
    pub fn open_image(bytes: Vec<u8>) -> Result<Self, StorageError> {
        Self::open_on_at(
            Box::new(MemFile::from_bytes(bytes)),
            PathBuf::from("<image>"),
        )
    }

    fn open_on_at(mut file: Box<dyn RawFile>, path: PathBuf) -> Result<Self, StorageError> {
        let mut candidates = Vec::new();
        let mut slot_errors = Vec::new();
        for result in Self::read_superblock_slots(&mut file)? {
            match result {
                Ok(info) => candidates.push(info),
                Err(e) => slot_errors.push(e),
            }
        }
        if candidates.is_empty() {
            // Surface the slot-A failure — that is where a v1 superblock
            // (and the first v2 epoch) lives, so its diagnosis is the
            // legible one.
            return Err(slot_errors
                .into_iter()
                .next()
                .expect("both slots were parsed"));
        }
        // Newest epoch first.
        candidates.sort_by_key(|c| std::cmp::Reverse(c.epoch()));

        let mut trailer_error: Option<StorageError> = None;
        for info in candidates {
            match Self::load_from_superblock(&mut file, &info) {
                Ok((files, checksums, catalog, shadow)) => {
                    return Ok(FileStorage {
                        file,
                        path,
                        files,
                        checksums,
                        catalog,
                        shadow,
                        poisoned: None,
                    })
                }
                // Remember the *newest* epoch's failure: that is the state
                // the caller lost, and the structure to name.
                Err(e) => {
                    if trailer_error.is_none() {
                        trailer_error = Some(e);
                    }
                }
            }
        }
        Err(trailer_error.expect("non-empty candidates recorded a failure"))
    }

    /// Read and parse both superblock slots (best effort — short files
    /// simply yield fewer candidate bytes, failing that slot's parse).
    /// One `Result` per slot, in slot order; shared by the recovery path
    /// ([`FileStorage::open`]) and the inspection path
    /// ([`FileStorage::layout`]) so the two can never disagree about what
    /// a valid superblock is.
    fn read_superblock_slots(
        file: &mut Box<dyn RawFile>,
    ) -> Result<Vec<Result<SbInfo, StorageError>>, StorageError> {
        let file_len = file.byte_len()?;
        let mut slots = Vec::with_capacity(SB_SLOT_OFFSETS.len());
        for &off in SB_SLOT_OFFSETS.iter() {
            let avail = file_len.saturating_sub(off).min(SUPERBLOCK_LEN_V2 as u64);
            let mut buf = vec![0u8; avail as usize];
            if !buf.is_empty() {
                file.read_at(off, &mut buf)
                    .map_err(|e| StorageError::BadSuperblock(format!("short read: {e}")))?;
            }
            slots.push(parse_superblock(&buf));
        }
        Ok(slots)
    }

    /// Load the tables a checksum-valid superblock points at. Fails
    /// (naming the trailer) when the trailer is short, corrupt, does not
    /// parse, or is inconsistent with the superblock.
    #[allow(clippy::type_complexity)]
    fn load_from_superblock(
        file: &mut Box<dyn RawFile>,
        info: &SbInfo,
    ) -> Result<
        (
            Vec<Vec<PhysPage>>,
            Vec<u64>,
            BTreeMap<String, Vec<u8>>,
            Option<ShadowState>,
        ),
        StorageError,
    > {
        let (trailer_off, trailer_len, trailer_checksum) = match info {
            SbInfo::V1 {
                trailer_off,
                trailer_len,
                trailer_checksum,
                ..
            } => (*trailer_off, *trailer_len, *trailer_checksum),
            SbInfo::V2 {
                trailer_slot,
                trailer_len,
                trailer_checksum,
                ..
            } => (slot_offset(*trailer_slot), *trailer_len, *trailer_checksum),
        };
        let mut trailer = vec![0u8; usize::try_from(trailer_len).expect("trailer fits memory")];
        file.read_at(trailer_off, &mut trailer)
            .map_err(|e| StorageError::BadSuperblock(format!("short trailer read: {e}")))?;
        let actual = fnv1a(&trailer);
        if trailer_checksum != actual {
            return Err(StorageError::ChecksumMismatch {
                what: "trailer".into(),
                expected: trailer_checksum,
                actual,
            });
        }
        match info {
            SbInfo::V1 { total_pages, .. } => {
                let (files, checksums, catalog) = parse_trailer_v1(&trailer).ok_or_else(|| {
                    StorageError::BadSuperblock("trailer does not parse (format drift?)".into())
                })?;
                if checksums.len() as u64 != *total_pages {
                    return Err(StorageError::BadSuperblock(format!(
                        "superblock says {total_pages} pages, trailer lists {}",
                        checksums.len()
                    )));
                }
                Ok((files, checksums, catalog, None))
            }
            SbInfo::V2 {
                epoch,
                total_pages,
                slot_count,
                trailer_slot,
                trailer_len,
                ..
            } => {
                let (files, slots, checksums, catalog, free_list) = parse_trailer_v2(&trailer)
                    .ok_or_else(|| {
                        StorageError::BadSuperblock("trailer does not parse (format drift?)".into())
                    })?;
                if checksums.len() as u64 != *total_pages || slots.len() as u64 != *total_pages {
                    return Err(StorageError::BadSuperblock(format!(
                        "superblock says {total_pages} pages, trailer lists {} checksums / {} \
                         slots",
                        checksums.len(),
                        slots.len()
                    )));
                }
                // Partition check: every slot below the high-water mark is
                // referenced exactly once — by the slot table, the free
                // list, or the trailer itself. Anything else means the
                // trailer lies about what is reclaimable, which shadow
                // paging cannot survive; reject it as corrupt.
                let trailer_slots = trailer_len.div_ceil(PAGE_SIZE as u64).max(1);
                let trailer_range = *trailer_slot..trailer_slot + trailer_slots;
                let mut referenced = vec![false; usize::try_from(*slot_count).unwrap_or(0)];
                let mut claim = |s: u64| -> bool {
                    match referenced.get_mut(s as usize) {
                        Some(r) if !*r => {
                            *r = true;
                            true
                        }
                        _ => false,
                    }
                };
                for &s in slots.iter().filter(|&&s| s != NO_SLOT) {
                    if !claim(s) {
                        return Err(StorageError::BadSuperblock(format!(
                            "trailer slot table references slot {s} twice or past the {slot_count}-slot region"
                        )));
                    }
                }
                for &s in &free_list {
                    if trailer_range.contains(&s) {
                        // The trailer occupies slots that were free when it
                        // was allocated; they are accounted for below.
                        continue;
                    }
                    if !claim(s) {
                        return Err(StorageError::BadSuperblock(format!(
                            "trailer free list references slot {s} twice or past the {slot_count}-slot region"
                        )));
                    }
                }
                for s in trailer_range.clone() {
                    if let Some(r) = referenced.get_mut(s as usize) {
                        *r = true;
                    }
                }
                if let Some(unref) = referenced.iter().position(|&r| !r) {
                    return Err(StorageError::BadSuperblock(format!(
                        "slot {unref} is referenced by neither the slot table, the free list \
                         nor the trailer"
                    )));
                }
                let free: BTreeSet<u64> = free_list
                    .into_iter()
                    .filter(|s| !trailer_range.contains(s))
                    .collect();
                Ok((
                    files,
                    checksums.clone(),
                    catalog,
                    Some(ShadowState {
                        epoch: *epoch,
                        slot_count: *slot_count,
                        committed_slots: slots.clone(),
                        slots,
                        free,
                    }),
                ))
            }
        }
    }

    /// The path this storage lives at (`"<raw>"` / `"<image>"` for
    /// non-filesystem backings).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The last committed epoch (always 0 for v1 files, which have no
    /// epochs).
    pub fn epoch(&self) -> u64 {
        self.shadow.as_ref().map_or(0, |s| s.epoch)
    }

    /// Superblock format version of this storage (1 or 2).
    pub fn format_version(&self) -> u32 {
        if self.shadow.is_some() {
            VERSION_V2
        } else {
            VERSION_V1
        }
    }

    fn trailer_bytes_v1(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.files.len() as u32);
        for pages in &self.files {
            w.u64s(pages);
        }
        w.u64s(&self.checksums);
        w.u32(self.catalog.len() as u32);
        for (key, val) in &self.catalog {
            w.str(key);
            w.bytes(val);
        }
        w.into_bytes()
    }

    fn superblock_bytes_v1(&self, trailer_off: u64, trailer: &[u8]) -> [u8; SUPERBLOCK_LEN_V1] {
        let mut w = Writer::new();
        w.u32(VERSION_V1);
        w.u32(PAGE_SIZE as u32);
        w.u64(self.checksums.len() as u64);
        w.u64(trailer_off);
        w.u64(trailer.len() as u64);
        w.u64(fnv1a(trailer));
        let body = w.into_bytes();
        let mut sb = [0u8; SUPERBLOCK_LEN_V1];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..8 + body.len()].copy_from_slice(&body);
        let ck = fnv1a(&sb[..SUPERBLOCK_LEN_V1 - 8]);
        sb[SUPERBLOCK_LEN_V1 - 8..].copy_from_slice(&ck.to_le_bytes());
        sb
    }

    /// v1 sync: rewrite the trailing trailer and the single superblock in
    /// place (the historical, non-crash-atomic protocol).
    fn sync_v1(&mut self) -> Result<(), StorageError> {
        let trailer = self.trailer_bytes_v1();
        let trailer_off = slot_offset(self.checksums.len() as PhysPage);
        self.file.write_at(trailer_off, &trailer)?;
        // Drop any longer stale trailer from a previous sync so the file
        // ends exactly at the live data.
        self.file.set_len(trailer_off + trailer.len() as u64)?;
        let sb = self.superblock_bytes_v1(trailer_off, &trailer);
        self.file.write_at(0, &sb)?;
        self.file.sync_all()?;
        Ok(())
    }

    fn trailer_bytes_v2(&self, free_after: &[u64]) -> Vec<u8> {
        let shadow = self.shadow.as_ref().expect("v2 state");
        let mut w = Writer::new();
        w.u32(self.files.len() as u32);
        for pages in &self.files {
            w.u64s(pages);
        }
        w.u64s(&shadow.slots);
        w.u64s(&self.checksums);
        w.u32(self.catalog.len() as u32);
        for (key, val) in &self.catalog {
            w.str(key);
            w.bytes(val);
        }
        w.u64s(free_after);
        w.into_bytes()
    }

    fn superblock_bytes_v2(
        &self,
        epoch: u64,
        slot_count: u64,
        trailer_slot: u64,
        trailer: &[u8],
    ) -> [u8; SUPERBLOCK_LEN_V2] {
        let mut w = Writer::new();
        w.u32(VERSION_V2);
        w.u32(PAGE_SIZE as u32);
        w.u64(epoch);
        w.u64(self.checksums.len() as u64);
        w.u64(slot_count);
        w.u64(trailer_slot);
        w.u64(trailer.len() as u64);
        w.u64(fnv1a(trailer));
        let body = w.into_bytes();
        let mut sb = [0u8; SUPERBLOCK_LEN_V2];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..8 + body.len()].copy_from_slice(&body);
        let ck = fnv1a(&sb[..SUPERBLOCK_LEN_V2 - 8]);
        sb[SUPERBLOCK_LEN_V2 - 8..].copy_from_slice(&ck.to_le_bytes());
        sb
    }

    /// v2 commit: shadow trailer write, data barrier, superblock flip into
    /// the ping-pong slot, commit barrier, then the in-memory epoch GC.
    /// See the module docs for the crash analysis of each step.
    fn commit_v2(&mut self, epoch: u64) -> Result<(), StorageError> {
        // Slots that become unreferenced once this epoch commits: old page
        // versions, the previous trailer, never-used gaps — everything the
        // *new* slot table does not claim. Persisted in the trailer so
        // recovery derives the same free set (minus the new trailer's own
        // slots), and adopted in memory after the flip (the epoch GC).
        let free_after: Vec<u64> = {
            let shadow = self.shadow.as_ref().expect("v2 state");
            let mapped: BTreeSet<u64> = shadow
                .slots
                .iter()
                .copied()
                .filter(|&s| s != NO_SLOT)
                .collect();
            (0..shadow.slot_count)
                .filter(|s| !mapped.contains(s))
                .collect()
        };
        let trailer = self.trailer_bytes_v2(&free_after);
        let trailer_slots = (trailer.len() as u64).div_ceil(PAGE_SIZE as u64).max(1);
        // The new trailer may only claim slots the committed epoch cannot
        // reach — the strict free set — never the about-to-die slots in
        // `free_after`, which the previous epoch still reads.
        let trailer_slot = {
            let shadow = self.shadow.as_mut().expect("v2 state");
            shadow.take_free_run(trailer_slots)
        };
        self.file.write_at(slot_offset(trailer_slot), &trailer)?;
        self.file.sync_all()?;
        let slot_count = self.shadow.as_ref().expect("v2 state").slot_count;
        let sb = self.superblock_bytes_v2(epoch, slot_count, trailer_slot, &trailer);
        self.file
            .write_at(SB_SLOT_OFFSETS[(epoch % 2) as usize], &sb)?;
        self.file.sync_all()?;
        // The flip is durable: commit in memory and reclaim the dead
        // epoch's slots.
        let shadow = self.shadow.as_mut().expect("v2 state");
        shadow.epoch = epoch;
        shadow.committed_slots = shadow.slots.clone();
        shadow.free = free_after
            .into_iter()
            .filter(|&s| !(trailer_slot..trailer_slot + trailer_slots).contains(&s))
            .collect();
        Ok(())
    }
}

/// File byte offset of physical slot `s` (v2) / in-place physical page
/// `s` (v1): page 0 is reserved for the superblocks.
fn slot_offset(s: u64) -> u64 {
    PAGE_SIZE as u64 + s * PAGE_SIZE as u64
}

#[allow(clippy::type_complexity)]
fn parse_trailer_v1(
    bytes: &[u8],
) -> Option<(Vec<Vec<PhysPage>>, Vec<u64>, BTreeMap<String, Vec<u8>>)> {
    let mut r = Reader::new(bytes);
    let file_count = r.u32()?;
    let mut files = Vec::with_capacity(file_count as usize);
    for _ in 0..file_count {
        files.push(r.u64s()?);
    }
    let checksums = r.u64s()?;
    let catalog = parse_catalog(&mut r)?;
    r.is_exhausted().then_some((files, checksums, catalog))
}

#[allow(clippy::type_complexity)]
fn parse_trailer_v2(
    bytes: &[u8],
) -> Option<(
    Vec<Vec<PhysPage>>,
    Vec<u64>,
    Vec<u64>,
    BTreeMap<String, Vec<u8>>,
    Vec<u64>,
)> {
    let mut r = Reader::new(bytes);
    let file_count = r.u32()?;
    let mut files = Vec::with_capacity(file_count as usize);
    for _ in 0..file_count {
        files.push(r.u64s()?);
    }
    let slots = r.u64s()?;
    let checksums = r.u64s()?;
    let catalog = parse_catalog(&mut r)?;
    let free_list = r.u64s()?;
    r.is_exhausted()
        .then_some((files, slots, checksums, catalog, free_list))
}

fn parse_catalog(r: &mut Reader<'_>) -> Option<BTreeMap<String, Vec<u8>>> {
    let catalog_count = r.u32()?;
    let mut catalog = BTreeMap::new();
    for _ in 0..catalog_count {
        let key = r.str()?;
        let val = r.bytes()?.to_vec();
        catalog.insert(key, val);
    }
    Some(catalog)
}

impl Storage for FileStorage {
    fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(Vec::new());
        id
    }

    fn file_count(&self) -> usize {
        self.files.len()
    }

    fn file_len(&self, file: FileId) -> u64 {
        self.file_pages(file).len() as u64
    }

    fn total_pages(&self) -> u64 {
        self.checksums.len() as u64
    }

    fn allocate_page(&mut self, file: FileId) -> PageId {
        self.file_pages(file); // named bounds check
        let phys = self.checksums.len() as PhysPage;
        self.checksums.push(zero_page_checksum());
        match &mut self.shadow {
            Some(shadow) => {
                // v2: no I/O at all. The page has no slot until its first
                // write; reads serve zeros straight from the sentinel.
                shadow.slots.push(NO_SLOT);
            }
            None => {
                // v1: the new page must read back as zeros (matching its
                // recorded checksum) even if never explicitly written.
                // Growth past the end of the file zero-fills for free via
                // `set_len`; but the region may instead overlap a trailer
                // from an earlier `sync`, whose stale bytes must be zeroed
                // explicitly.
                let offset = slot_offset(phys);
                let current_len = self
                    .file
                    .byte_len()
                    .unwrap_or_else(|e| panic!("failed to stat {:?}: {e}", self.path));
                if current_len > offset {
                    self.file
                        .write_at(offset, &[0u8; PAGE_SIZE])
                        .unwrap_or_else(|e| {
                            panic!("failed to zero new page in {:?}: {e}", self.path)
                        });
                } else {
                    self.file
                        .set_len(offset + PAGE_SIZE as u64)
                        .unwrap_or_else(|e| panic!("failed to extend {:?}: {e}", self.path));
                }
            }
        }
        let f = &mut self.files[file.0 as usize];
        f.push(phys);
        (f.len() - 1) as PageId
    }

    fn phys(&self, file: FileId, page: PageId) -> PhysPage {
        let f = self.file_pages(file);
        *f.get(page as usize).unwrap_or_else(|| {
            panic!(
                "page {page} out of bounds for {file:?} ({} page(s) allocated)",
                f.len()
            )
        })
    }

    fn read_phys(&mut self, phys: PhysPage, out: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        let expected = *self.checksums.get(phys as usize).unwrap_or_else(|| {
            panic!(
                "physical page {phys} out of bounds ({} page(s) allocated)",
                self.checksums.len()
            )
        });
        match &self.shadow {
            Some(shadow) => match shadow.slots[phys as usize] {
                NO_SLOT => out.fill(0),
                slot => self.file.read_at(slot_offset(slot), &mut out[..])?,
            },
            None => self.file.read_at(slot_offset(phys), &mut out[..])?,
        }
        let actual = fnv1a(&out[..]);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch {
                what: format!("page {phys}"),
                expected,
                actual,
            });
        }
        Ok(())
    }

    fn write_phys(&mut self, phys: PhysPage, data: &[u8]) -> Result<(), StorageError> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        self.check_poison()?;
        let total = self.checksums.len();
        let slot = self.checksums.get_mut(phys as usize).unwrap_or_else(|| {
            panic!("physical page {phys} out of bounds ({total} page(s) allocated)")
        });
        *slot = fnv1a(data);
        let offset = match &mut self.shadow {
            Some(shadow) => {
                let cur = shadow.slots[phys as usize];
                let target = if cur != NO_SLOT && cur != shadow.committed_slot(phys) {
                    // Already shadowed since the last commit: its slot is
                    // reachable from nothing committed, so overwrite in
                    // place.
                    cur
                } else {
                    // First write since the commit (or ever): the page's
                    // committed image must stay readable through a crash,
                    // so claim a fresh slot and leave the old one alone.
                    let s = shadow.take_free_slot();
                    shadow.slots[phys as usize] = s;
                    s
                };
                slot_offset(target)
            }
            None => slot_offset(phys),
        };
        self.file.write_at(offset, data)?;
        Ok(())
    }

    fn put_catalog(&mut self, key: &str, bytes: &[u8]) {
        self.catalog.insert(key.to_string(), bytes.to_vec());
    }

    fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
        self.catalog.get(key).cloned()
    }

    fn catalog_keys(&self) -> Vec<String> {
        self.catalog.keys().cloned().collect()
    }

    /// Commit every write since the last sync. The caller (the buffer
    /// pool's [`sync`](crate::BufferPool::sync)) has already flushed every
    /// dirty page through [`FileStorage::write_phys`]. v2 runs the
    /// crash-atomic shadow commit; v1 rewrites trailer + superblock in
    /// place.
    fn sync(&mut self) -> Result<(), StorageError> {
        self.check_poison()?;
        let result = match &self.shadow {
            Some(shadow) => {
                let next = shadow.epoch + 1;
                self.commit_v2(next)
            }
            None => self.sync_v1(),
        };
        if let Err(e) = &result {
            // The commit's I/O stopped partway: a partially written (and
            // possibly durable) next epoch may reference slots the
            // in-memory free list would happily hand out again — writing
            // on could therefore corrupt the only recoverable state.
            // Refuse all further mutation; reopen to recover.
            self.poisoned = Some(e.to_string());
        }
        result
    }

    fn epoch(&self) -> u64 {
        FileStorage::epoch(self)
    }
}

impl FileStorage {
    fn check_poison(&self) -> Result<(), StorageError> {
        match &self.poisoned {
            Some(why) => Err(StorageError::Poisoned {
                path: self.path.display().to_string(),
                cause: why.clone(),
            }),
            None => Ok(()),
        }
    }

    /// The commit failure that poisoned this storage, if any. `None`
    /// means the storage is healthy and writable; `Some(cause)` means
    /// every further mutation is refused with [`StorageError::Poisoned`]
    /// (naming this cause and the file's path) until the file is
    /// reopened, which runs recovery.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// The physical-page list of `file`, with a legible panic on an
    /// out-of-range id (mirrors [`MemStorage`](crate::MemStorage)).
    fn file_pages(&self, file: FileId) -> &Vec<PhysPage> {
        let count = self.files.len();
        self.files.get(file.0 as usize).unwrap_or_else(|| {
            panic!("unknown {file:?}: storage has {count} file(s) — FileId from another pager?")
        })
    }
}

impl std::fmt::Debug for FileStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStorage")
            .field("path", &self.path)
            .field("version", &self.format_version())
            .field("epoch", &self.epoch())
            .field("files", &self.files.len())
            .field("pages", &self.checksums.len())
            .field("catalog_keys", &self.catalog.len())
            .finish()
    }
}

/// Byte extents of the metadata structures of a storage file, for tests
/// that target corruption (bit flips, truncation) at named structures.
#[derive(Debug, Clone)]
pub struct StorageLayout {
    /// Superblock format version (1 or 2).
    pub version: u32,
    /// Newest committed epoch (0 for v1).
    pub epoch: u64,
    /// `(offset, len)` of superblock slots A and B. For v1 only slot A is
    /// meaningful (slot B is reserved zeros).
    pub superblocks: [(u64, u64); 2],
    /// Which superblock slot holds the newest committed epoch.
    pub active_superblock: usize,
    /// `(offset, len)` of the committed (newest) trailer.
    pub trailer: (u64, u64),
    /// `(offset, len)` of the previous epoch's trailer, when its
    /// superblock is still valid (v2 only).
    pub previous_trailer: Option<(u64, u64)>,
    /// Per logical physical page: byte offset of its current on-disk
    /// image (`None` for never-written pages, which have no slot).
    pub pages: Vec<Option<u64>>,
}

impl FileStorage {
    /// Inspect the metadata layout of the storage file at `path` without
    /// constructing a storage (the file is only read).
    pub fn layout(path: impl AsRef<Path>) -> Result<StorageLayout, StorageError> {
        let file = OpenOptions::new().read(true).open(path.as_ref())?;
        Self::layout_on(Box::new(OsFile::new(file)))
    }

    /// Inspect the metadata layout of a frozen byte image — how the fault
    /// harness finds committed page slots to target with bit flips,
    /// without writing the image to the filesystem first.
    pub fn layout_image(bytes: &[u8]) -> Result<StorageLayout, StorageError> {
        Self::layout_on(Box::new(MemFile::from_bytes(bytes.to_vec())))
    }

    /// Shared layout-inspection core over any [`RawFile`] (read-only).
    fn layout_on(mut raw: Box<dyn RawFile>) -> Result<StorageLayout, StorageError> {
        let mut slots = Self::read_superblock_slots(&mut raw)?.into_iter();
        let mut slot_info = || slots.next().expect("both slots were parsed").ok();
        let infos: [Option<SbInfo>; 2] = [slot_info(), slot_info()];
        let active = match (&infos[0], &infos[1]) {
            (Some(a), Some(b)) => usize::from(b.epoch() > a.epoch()),
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            (None, None) => {
                return Err(StorageError::BadSuperblock(
                    "no valid superblock slot".into(),
                ))
            }
        };
        let extent = |info: &SbInfo| match info {
            SbInfo::V1 {
                trailer_off,
                trailer_len,
                ..
            } => (*trailer_off, *trailer_len),
            SbInfo::V2 {
                trailer_slot,
                trailer_len,
                ..
            } => (slot_offset(*trailer_slot), *trailer_len),
        };
        let info = infos[active].as_ref().expect("active slot parsed");
        let trailer = extent(info);
        let previous_trailer = infos[1 - active].as_ref().map(&extent);
        let (version, sb_len) = match info {
            SbInfo::V1 { .. } => (VERSION_V1, SUPERBLOCK_LEN_V1 as u64),
            SbInfo::V2 { .. } => (VERSION_V2, SUPERBLOCK_LEN_V2 as u64),
        };
        // Per-page image offsets come from the newest trailer, verified
        // like every other read path — a damaged trailer must surface as
        // a named error here, not as empty/bogus page extents that would
        // send a corruption test flipping the wrong bytes.
        let mut trailer_bytes = vec![0u8; usize::try_from(trailer.1).expect("fits")];
        raw.read_at(trailer.0, &mut trailer_bytes)
            .map_err(|e| StorageError::BadSuperblock(format!("short trailer read: {e}")))?;
        let trailer_checksum = match info {
            SbInfo::V1 {
                trailer_checksum, ..
            }
            | SbInfo::V2 {
                trailer_checksum, ..
            } => *trailer_checksum,
        };
        let actual = fnv1a(&trailer_bytes);
        if trailer_checksum != actual {
            return Err(StorageError::ChecksumMismatch {
                what: "trailer".into(),
                expected: trailer_checksum,
                actual,
            });
        }
        let pages = match info {
            SbInfo::V1 { total_pages, .. } => {
                (0..*total_pages).map(|p| Some(slot_offset(p))).collect()
            }
            SbInfo::V2 { .. } => {
                let (_, slots, ..) = parse_trailer_v2(&trailer_bytes).ok_or_else(|| {
                    StorageError::BadSuperblock("trailer does not parse (format drift?)".into())
                })?;
                slots
                    .iter()
                    .map(|&s| (s != NO_SLOT).then(|| slot_offset(s)))
                    .collect()
            }
        };
        Ok(StorageLayout {
            version,
            epoch: info.epoch(),
            superblocks: [(SB_SLOT_OFFSETS[0], sb_len), (SB_SLOT_OFFSETS[1], sb_len)],
            active_superblock: active,
            trailer,
            previous_trailer,
            pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pagestore-{tag}-{}.oif", std::process::id()));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn roundtrip_on(mut make: impl FnMut(&Path) -> FileStorage, path: &Path) {
        let (f, phys) = {
            let mut s = make(path);
            let f = s.create_file();
            let p0 = s.allocate_page(f);
            let p1 = s.allocate_page(f);
            assert_eq!((p0, p1), (0, 1));
            let mut page = [0u8; PAGE_SIZE];
            page[7] = 77;
            let phys = s.phys(f, 1);
            s.write_phys(phys, &page).unwrap();
            s.put_catalog("k", b"v");
            s.sync().unwrap();
            (f, phys)
        };
        let mut s = FileStorage::open(path).unwrap();
        assert_eq!(s.file_count(), 1);
        assert_eq!(s.file_len(f), 2);
        assert_eq!(s.total_pages(), 2);
        assert_eq!(s.phys(f, 1), phys);
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(phys, &mut out).unwrap();
        assert_eq!(out[7], 77);
        // Page 0 was never written: reads back as zeros, checksum valid.
        s.read_phys(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(s.get_catalog("k").as_deref(), Some(&b"v"[..]));
        assert_eq!(s.get_catalog("missing"), None);
    }

    #[test]
    fn pages_and_catalog_survive_reopen() {
        let path = temp_path("roundtrip");
        let _c = Cleanup(path.clone());
        roundtrip_on(|p| FileStorage::create(p).unwrap(), &path);
    }

    #[test]
    fn v1_pages_and_catalog_survive_reopen() {
        let path = temp_path("roundtrip-v1");
        let _c = Cleanup(path.clone());
        roundtrip_on(|p| FileStorage::create_v1(p).unwrap(), &path);
        assert_eq!(FileStorage::open(&path).unwrap().format_version(), 1);
    }

    #[test]
    fn created_file_opens_empty_without_explicit_sync() {
        let path = temp_path("fresh");
        let _c = Cleanup(path.clone());
        drop(FileStorage::create(&path).unwrap());
        let s = FileStorage::open(&path).unwrap();
        assert_eq!(s.file_count(), 0);
        assert_eq!(s.total_pages(), 0);
        assert_eq!(s.format_version(), 2);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn flipped_page_byte_is_a_checksum_error() {
        let path = temp_path("corrupt-page");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.write_phys(0, &[5u8; PAGE_SIZE]).unwrap();
            s.sync().unwrap();
        }
        // Flip one byte inside page 0's current image.
        let offset = FileStorage::layout(&path).unwrap().pages[0].expect("page 0 has a slot");
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(offset + 100)).unwrap();
            f.write_all(&[6u8]).unwrap();
        }
        let mut s = FileStorage::open(&path).unwrap(); // metadata intact
        let mut out = [0u8; PAGE_SIZE];
        let err = s.read_phys(0, &mut out).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum mismatch on page 0"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn v1_flipped_trailer_byte_fails_open() {
        let path = temp_path("corrupt-trailer-v1");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create_v1(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.sync().unwrap();
        }
        let end = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(end - 1)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(end - 1)).unwrap();
            f.write_all(&[b[0] ^ 0xFF]).unwrap();
        }
        let err = FileStorage::open(&path).unwrap_err();
        assert!(err.to_string().contains("trailer"), "got: {err}");
    }

    #[test]
    fn non_storage_file_is_rejected() {
        let path = temp_path("not-ours");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, b"definitely not a storage file, far too short").unwrap();
        let err = FileStorage::open(&path).unwrap_err();
        assert!(matches!(err, StorageError::BadSuperblock(_)), "got: {err}");
    }

    #[test]
    fn v1_page_allocated_over_old_trailer_reads_back_zeroed() {
        // v1 only: after a sync the trailer sits right after the page
        // region; the next allocate_page claims that byte range for page
        // data. The stale trailer bytes must be zeroed, or reading the
        // fresh page before its first write would fail its (zero-page)
        // checksum. (v2 never overlaps pages and trailers: both live in
        // explicitly allocated slots.)
        let path = temp_path("alloc-over-trailer");
        let _c = Cleanup(path.clone());
        let mut s = FileStorage::create_v1(&path).unwrap();
        let f = s.create_file();
        s.allocate_page(f);
        s.write_phys(0, &[1u8; PAGE_SIZE]).unwrap();
        s.sync().unwrap(); // trailer now occupies page 1's future region
        s.allocate_page(f);
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(1, &mut out)
            .expect("fresh page must be readable");
        assert!(out.iter().all(|&b| b == 0), "fresh page must read as zeros");
    }

    #[test]
    fn resync_after_growth_relocates_trailer() {
        type Maker = fn(&Path) -> Result<FileStorage, StorageError>;
        let makers: [Maker; 2] = [|p| FileStorage::create(p), |p| FileStorage::create_v1(p)];
        for make in makers {
            let path = temp_path("regrow");
            let _c = Cleanup(path.clone());
            {
                let mut s = make(&path).unwrap();
                let f = s.create_file();
                s.allocate_page(f);
                s.sync().unwrap();
                // Growing after a sync must not disturb the committed
                // trailer until the next sync supersedes it.
                s.allocate_page(f);
                s.write_phys(1, &[9u8; PAGE_SIZE]).unwrap();
                s.put_catalog("after", b"growth");
                s.sync().unwrap();
            }
            let mut s = FileStorage::open(&path).unwrap();
            assert_eq!(s.total_pages(), 2);
            let mut out = [0u8; PAGE_SIZE];
            s.read_phys(1, &mut out).unwrap();
            assert_eq!(out[0], 9);
            assert_eq!(s.get_catalog("after").as_deref(), Some(&b"growth"[..]));
        }
    }

    #[test]
    fn uncommitted_writes_leave_the_committed_epoch_readable() {
        // The heart of shadow paging: after a sync, further writes —
        // rewrites of committed pages, new pages, catalog changes — must
        // not touch a single byte the committed epoch can reach. Proven
        // here by snapshotting the file bytes the committed metadata
        // references and re-reading them after heavy uncommitted churn.
        let path = temp_path("shadow-isolation");
        let _c = Cleanup(path.clone());
        let mut s = FileStorage::create(&path).unwrap();
        let f = s.create_file();
        for _ in 0..4 {
            s.allocate_page(f);
        }
        for p in 0..4u64 {
            s.write_phys(p, &[p as u8 + 1; PAGE_SIZE]).unwrap();
        }
        s.put_catalog("epoch", b"one");
        s.sync().unwrap();

        let committed = FileStorage::layout(&path).unwrap();
        let snapshot = |layout: &StorageLayout| -> Vec<Vec<u8>> {
            let bytes = std::fs::read(&path).unwrap();
            let mut extents: Vec<(u64, u64)> =
                vec![layout.superblocks[layout.active_superblock], layout.trailer];
            extents.extend(
                layout
                    .pages
                    .iter()
                    .flatten()
                    .map(|&o| (o, PAGE_SIZE as u64)),
            );
            extents
                .iter()
                .map(|&(off, len)| bytes[off as usize..(off + len) as usize].to_vec())
                .collect()
        };
        let before = snapshot(&committed);

        // Uncommitted churn: rewrite every page twice, add pages, change
        // the catalog.
        for round in 0..2u8 {
            for p in 0..4u64 {
                s.write_phys(p, &[0x80 + round + p as u8; PAGE_SIZE])
                    .unwrap();
            }
        }
        s.allocate_page(f);
        s.write_phys(4, &[0xEE; PAGE_SIZE]).unwrap();
        s.put_catalog("epoch", b"two-uncommitted");

        assert_eq!(
            snapshot(&committed),
            before,
            "uncommitted writes touched bytes reachable from the committed epoch"
        );
        // And the churned state still reads back correctly in memory.
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(0, &mut out).unwrap();
        assert_eq!(out[0], 0x81);
    }

    #[test]
    fn repeated_rewrite_sync_cycles_reuse_slots() {
        // Epoch GC: dead slots (old page versions, old trailers) must be
        // reclaimed, so a rewrite-sync loop reaches a steady-state file
        // size instead of growing per epoch.
        let path = temp_path("slot-gc");
        let _c = Cleanup(path.clone());
        let mut s = FileStorage::create(&path).unwrap();
        let f = s.create_file();
        for _ in 0..4 {
            s.allocate_page(f);
        }
        let mut sizes = Vec::new();
        for round in 0..12u8 {
            for p in 0..4u64 {
                s.write_phys(p, &[round + p as u8; PAGE_SIZE]).unwrap();
            }
            s.sync().unwrap();
            sizes.push(std::fs::metadata(&path).unwrap().len());
        }
        let (a, b) = (sizes[sizes.len() - 2], sizes[sizes.len() - 1]);
        assert_eq!(a, b, "file size must reach a steady state: {sizes:?}");
        // Steady state is bounded: 4 live pages + 4 shadow slots + two
        // trailer generations + the superblock page.
        assert!(
            b <= (PAGE_SIZE as u64) * 12,
            "file grew past the GC bound: {sizes:?}"
        );
        // And the final state reads back.
        drop(s);
        let mut s = FileStorage::open(&path).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(0, &mut out).unwrap();
        assert_eq!(out[0], 11);
    }

    #[test]
    fn failed_commit_poisons_the_storage_refusing_further_writes() {
        // If a commit's I/O dies partway (e.g. fsync failure), a
        // partially written next epoch may already reference shadow
        // slots; writing on and reusing those slots could corrupt the
        // only recoverable state. The storage must refuse all further
        // mutation until reopened.
        struct FailAfter {
            inner: MemFile,
            sync_calls_left: u32,
        }
        impl RawFile for FailAfter {
            fn read_at(&mut self, offset: u64, out: &mut [u8]) -> std::io::Result<()> {
                self.inner.read_at(offset, out)
            }
            fn write_at(&mut self, offset: u64, data: &[u8]) -> std::io::Result<()> {
                self.inner.write_at(offset, data)
            }
            fn set_len(&mut self, len: u64) -> std::io::Result<()> {
                self.inner.set_len(len)
            }
            fn byte_len(&mut self) -> std::io::Result<u64> {
                self.inner.byte_len()
            }
            fn sync_all(&mut self) -> std::io::Result<()> {
                if self.sync_calls_left == 0 {
                    return Err(std::io::Error::other("simulated fsync failure"));
                }
                self.sync_calls_left -= 1;
                self.inner.sync_all()
            }
        }

        // `create`'s epoch-0 commit needs exactly two barriers; the next
        // commit's first barrier fails.
        let mut s = FileStorage::create_on(Box::new(FailAfter {
            inner: MemFile::new(),
            sync_calls_left: 2,
        }))
        .expect("create commits cleanly");
        let f = s.create_file();
        s.allocate_page(f);
        s.write_phys(0, &[1u8; PAGE_SIZE]).unwrap();
        assert!(s.poisoned().is_none(), "healthy storage probes as None");
        let err = s.sync().expect_err("commit must surface the fsync failure");
        assert!(err.to_string().contains("fsync"), "got: {err}");
        // The probe now names the originating failure…
        let cause = s.poisoned().expect("failed commit sets the probe");
        assert!(cause.contains("fsync"), "probe carries the cause: {cause}");
        // …and all further mutation is refused, naming the poisoning.
        let err = s.write_phys(0, &[2u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::Poisoned { .. }), "got: {err}");
        assert!(err.to_string().contains("poisoned"), "got: {err}");
        assert!(err.to_string().contains("fsync"), "got: {err}");
        let err = s.sync().unwrap_err();
        assert!(matches!(err, StorageError::Poisoned { .. }), "got: {err}");
        // …while reads of the (coherent) in-memory state still serve.
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(0, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn torn_superblock_slot_falls_back_to_previous_epoch() {
        let path = temp_path("torn-sb");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.write_phys(0, &[1u8; PAGE_SIZE]).unwrap();
            s.put_catalog("epoch", b"one");
            s.sync().unwrap(); // epoch 1
            s.write_phys(0, &[2u8; PAGE_SIZE]).unwrap();
            s.put_catalog("epoch", b"two");
            s.sync().unwrap(); // epoch 2
        }
        let layout = FileStorage::layout(&path).unwrap();
        assert_eq!(layout.epoch, 2);
        // Garble the active superblock slot — a torn flip.
        let (off, _) = layout.superblocks[layout.active_superblock];
        {
            let mut fh = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            fh.seek(SeekFrom::Start(off + 20)).unwrap();
            fh.write_all(&[0xFF; 8]).unwrap();
        }
        let mut s = FileStorage::open(&path).expect("must fall back to the previous epoch");
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.get_catalog("epoch").as_deref(), Some(&b"one"[..]));
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(0, &mut out).unwrap();
        assert_eq!(out[0], 1, "previous epoch's page image must be intact");
        // A recovered storage must be able to sync again.
        s.put_catalog("epoch", b"three");
        s.sync().unwrap();
        drop(s);
        let s = FileStorage::open(&path).unwrap();
        assert_eq!(s.get_catalog("epoch").as_deref(), Some(&b"three"[..]));
    }

    #[test]
    fn both_superblocks_corrupt_fails_naming_superblock() {
        let path = temp_path("both-sb");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            s.put_catalog("k", b"v");
            s.sync().unwrap();
        }
        {
            let mut fh = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            for off in SB_SLOT_OFFSETS {
                fh.seek(SeekFrom::Start(off + 30)).unwrap();
                fh.write_all(&[0xAB; 4]).unwrap();
            }
        }
        let err = FileStorage::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("superblock"),
            "must name the superblock: {err}"
        );
    }

    #[test]
    fn open_image_round_trips_via_memfile() {
        let mut mem = MemFile::new();
        let image = {
            let mut s = FileStorage::create_on(Box::new(MemFile::new())).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.write_phys(0, &[3u8; PAGE_SIZE]).unwrap();
            s.put_catalog("k", b"v");
            s.sync().unwrap();
            // Rebuild the image by replaying into a fresh MemFile is not
            // possible (the storage owns its file), so round-trip through
            // a real temp file instead? No need: create over MemFile and
            // extract by re-reading through the storage API below.
            let mut out = [0u8; PAGE_SIZE];
            s.read_phys(0, &mut out).unwrap();
            assert_eq!(out[0], 3);
            // Serialize the whole file through the RawFile for the image.
            let len = s.file.byte_len().unwrap();
            let mut bytes = vec![0u8; len as usize];
            s.file.read_at(0, &mut bytes).unwrap();
            bytes
        };
        mem.write_at(0, &image).unwrap();
        let mut s = FileStorage::open_image(mem.into_bytes()).unwrap();
        assert_eq!(s.get_catalog("k").as_deref(), Some(&b"v"[..]));
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(0, &mut out).unwrap();
        assert_eq!(out[0], 3);
    }

    #[test]
    fn layout_names_the_structures() {
        let path = temp_path("layout");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.allocate_page(f);
            s.write_phys(0, &[1u8; PAGE_SIZE]).unwrap();
            s.sync().unwrap();
        }
        let l = FileStorage::layout(&path).unwrap();
        assert_eq!(l.version, 2);
        assert_eq!(l.epoch, 1);
        assert_eq!(l.active_superblock, 1, "epoch 1 lives in slot B");
        assert!(
            l.previous_trailer.is_some(),
            "epoch 0's trailer still valid"
        );
        assert_eq!(l.pages.len(), 2);
        assert!(l.pages[0].is_some(), "written page has a slot");
        assert!(l.pages[1].is_none(), "never-written page has no slot");
        assert!(l.trailer.0 >= PAGE_SIZE as u64);
    }
}
