//! The durable storage backend: one real file on disk.
//!
//! ## On-disk format
//!
//! ```text
//! offset 0                superblock (one page reserved; 60 bytes used)
//!   [ magic "OIFSTOR1" : 8 ][ version : u32 ][ page size : u32 ]
//!   [ total pages : u64 ][ trailer offset : u64 ][ trailer len : u64 ]
//!   [ trailer checksum : u64 ][ superblock checksum : u64 ]
//! offset PAGE_SIZE        page region: physical page i at
//!                         PAGE_SIZE + i * PAGE_SIZE
//! offset PAGE_SIZE + total_pages * PAGE_SIZE
//!                         trailer (written by `sync`):
//!   file table    — per logical file, its ordered physical-page list
//!   checksum table — one FNV-1a 64 per physical page
//!   catalog       — key → blob entries (index non-paged state)
//! ```
//!
//! Pages are written in place as the buffer pool evicts or flushes them;
//! the trailer and superblock are (re)written only by [`Storage::sync`],
//! followed by `File::sync_all`. The contract after a crash between syncs
//! is *fail loudly, never lie*: writes since the last sync are gone, and
//! because pages are rewritten in place (and new pages can overwrite the
//! old trailer region), such a crash can also invalidate previously
//! synced state — the stale superblock then points at a trailer, or a
//! trailer at pages, whose checksums no longer match, and reopen/reads
//! fail with a named [`StorageError::ChecksumMismatch`] instead of
//! serving a torn mixture. Crash *atomicity* (keeping the last synced
//! state readable through any crash) needs a write-ahead log or
//! shadow paging — a ROADMAP follow-up.
//!
//! Every page read verifies the page's checksum from the table, so bit rot
//! or a torn write surfaces as [`StorageError::ChecksumMismatch`] naming
//! the page — never as silently garbage query results.

use crate::disk::{FileId, PageId, PAGE_SIZE};
use crate::ser::{Reader, Writer};
use crate::storage::{fnv1a, PhysPage, Storage, StorageError};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
#[cfg(not(unix))]
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
#[cfg(unix)]
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Positioned read. On unix a single `pread` syscall (`read_exact_at`)
/// with no cursor motion — half the syscalls of the historical `seek` +
/// `read` pair, one saved per page fault. Other platforms keep the
/// two-call fallback.
fn read_exact_at(file: &mut File, offset: u64, out: &mut [u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        FileExt::read_exact_at(file, out, offset)
    }
    #[cfg(not(unix))]
    {
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(out)
    }
}

/// Positioned write: a single `pwrite` (`write_all_at`) on unix, the
/// `seek` + `write` pair elsewhere.
fn write_all_at(file: &mut File, offset: u64, data: &[u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        FileExt::write_all_at(file, data, offset)
    }
    #[cfg(not(unix))]
    {
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)
    }
}

const MAGIC: &[u8; 8] = b"OIFSTOR1";
const VERSION: u32 = 1;
/// Serialized superblock length (the rest of page 0 is reserved).
const SUPERBLOCK_LEN: usize = 60;

/// Checksum of an all-zero page (what `allocate_page` promises before the
/// first write), computed once.
fn zero_page_checksum() -> u64 {
    static CK: OnceLock<u64> = OnceLock::new();
    *CK.get_or_init(|| fnv1a(&[0u8; PAGE_SIZE]))
}

/// A [`Storage`] backend over one checksummed file. See the module docs
/// for the layout and durability contract.
pub struct FileStorage {
    file: File,
    path: PathBuf,
    /// `(file, page) → phys` table: `files[f][p]` is the physical page.
    files: Vec<Vec<PhysPage>>,
    /// Per-physical-page FNV-1a checksum (persisted in the trailer).
    checksums: Vec<u64>,
    /// Catalog blobs; `BTreeMap` so serialization order is deterministic.
    catalog: BTreeMap<String, Vec<u8>>,
}

impl FileStorage {
    /// Create a fresh storage file at `path` (truncating any existing
    /// file) and write its superblock.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut storage = FileStorage {
            file,
            path,
            files: Vec::new(),
            checksums: Vec::new(),
            catalog: BTreeMap::new(),
        };
        // A created-but-never-synced file must still be recognisably ours
        // (and openable as empty), so lay down the superblock + empty
        // trailer immediately.
        storage.sync()?;
        Ok(storage)
    }

    /// Open an existing storage file, verifying the superblock and trailer
    /// checksums and restoring the file table and catalog. Page payloads
    /// are *not* read here — they are verified lazily, page by page, as
    /// the buffer pool faults them in.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;

        // Superblock.
        let mut sb = [0u8; SUPERBLOCK_LEN];
        read_exact_at(&mut file, 0, &mut sb)
            .map_err(|e| StorageError::BadSuperblock(format!("short read: {e}")))?;
        if &sb[..8] != MAGIC {
            return Err(StorageError::BadSuperblock(format!(
                "bad magic {:02x?} (not a storage file?)",
                &sb[..8]
            )));
        }
        let expected = u64::from_le_bytes(sb[SUPERBLOCK_LEN - 8..].try_into().unwrap());
        let actual = fnv1a(&sb[..SUPERBLOCK_LEN - 8]);
        if expected != actual {
            return Err(StorageError::ChecksumMismatch {
                what: "superblock".into(),
                expected,
                actual,
            });
        }
        let mut r = Reader::new(&sb[8..SUPERBLOCK_LEN - 8]);
        let version = r.u32().unwrap();
        let page_size = r.u32().unwrap();
        let total_pages = r.u64().unwrap();
        let trailer_off = r.u64().unwrap();
        let trailer_len = r.u64().unwrap();
        let trailer_checksum = r.u64().unwrap();
        if version != VERSION {
            return Err(StorageError::BadSuperblock(format!(
                "version {version} (this build reads {VERSION})"
            )));
        }
        if page_size != PAGE_SIZE as u32 {
            return Err(StorageError::BadSuperblock(format!(
                "page size {page_size} (this build uses {PAGE_SIZE})"
            )));
        }

        // Trailer.
        let mut trailer = vec![0u8; usize::try_from(trailer_len).expect("trailer fits memory")];
        read_exact_at(&mut file, trailer_off, &mut trailer)
            .map_err(|e| StorageError::BadSuperblock(format!("short trailer read: {e}")))?;
        let actual = fnv1a(&trailer);
        if trailer_checksum != actual {
            return Err(StorageError::ChecksumMismatch {
                what: "trailer".into(),
                expected: trailer_checksum,
                actual,
            });
        }
        let (files, checksums, catalog) = parse_trailer(&trailer).ok_or_else(|| {
            StorageError::BadSuperblock("trailer does not parse (format drift?)".into())
        })?;
        if checksums.len() as u64 != total_pages {
            return Err(StorageError::BadSuperblock(format!(
                "superblock says {total_pages} pages, trailer lists {}",
                checksums.len()
            )));
        }
        Ok(FileStorage {
            file,
            path,
            files,
            checksums,
            catalog,
        })
    }

    /// The path this storage lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn page_offset(phys: PhysPage) -> u64 {
        PAGE_SIZE as u64 + phys * PAGE_SIZE as u64
    }

    fn trailer_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.files.len() as u32);
        for pages in &self.files {
            w.u64s(pages);
        }
        w.u64s(&self.checksums);
        w.u32(self.catalog.len() as u32);
        for (key, val) in &self.catalog {
            w.str(key);
            w.bytes(val);
        }
        w.into_bytes()
    }

    fn superblock_bytes(&self, trailer_off: u64, trailer: &[u8]) -> [u8; SUPERBLOCK_LEN] {
        let mut w = Writer::new();
        w.u32(VERSION);
        w.u32(PAGE_SIZE as u32);
        w.u64(self.checksums.len() as u64);
        w.u64(trailer_off);
        w.u64(trailer.len() as u64);
        w.u64(fnv1a(trailer));
        let body = w.into_bytes();
        let mut sb = [0u8; SUPERBLOCK_LEN];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..8 + body.len()].copy_from_slice(&body);
        let ck = fnv1a(&sb[..SUPERBLOCK_LEN - 8]);
        sb[SUPERBLOCK_LEN - 8..].copy_from_slice(&ck.to_le_bytes());
        sb
    }
}

#[allow(clippy::type_complexity)]
fn parse_trailer(
    bytes: &[u8],
) -> Option<(Vec<Vec<PhysPage>>, Vec<u64>, BTreeMap<String, Vec<u8>>)> {
    let mut r = Reader::new(bytes);
    let file_count = r.u32()?;
    let mut files = Vec::with_capacity(file_count as usize);
    for _ in 0..file_count {
        files.push(r.u64s()?);
    }
    let checksums = r.u64s()?;
    let catalog_count = r.u32()?;
    let mut catalog = BTreeMap::new();
    for _ in 0..catalog_count {
        let key = r.str()?;
        let val = r.bytes()?.to_vec();
        catalog.insert(key, val);
    }
    r.is_exhausted().then_some((files, checksums, catalog))
}

impl Storage for FileStorage {
    fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(Vec::new());
        id
    }

    fn file_count(&self) -> usize {
        self.files.len()
    }

    fn file_len(&self, file: FileId) -> u64 {
        self.file_pages(file).len() as u64
    }

    fn total_pages(&self) -> u64 {
        self.checksums.len() as u64
    }

    fn allocate_page(&mut self, file: FileId) -> PageId {
        self.file_pages(file); // named bounds check
        let phys = self.checksums.len() as PhysPage;
        self.checksums.push(zero_page_checksum());
        // The new page must read back as zeros (matching its recorded
        // checksum) even if never explicitly written. Growth past the end
        // of the file zero-fills for free via `set_len`; but the region
        // may instead overlap a trailer from an earlier `sync`, whose
        // stale bytes must be zeroed explicitly.
        let offset = Self::page_offset(phys);
        let current_len = self
            .file
            .metadata()
            .map(|m| m.len())
            .unwrap_or_else(|e| panic!("failed to stat {:?}: {e}", self.path));
        if current_len > offset {
            self.seek_write(offset, &[0u8; PAGE_SIZE])
                .unwrap_or_else(|e| panic!("failed to zero new page in {:?}: {e}", self.path));
        } else {
            self.file
                .set_len(offset + PAGE_SIZE as u64)
                .unwrap_or_else(|e| panic!("failed to extend {:?}: {e}", self.path));
        }
        let f = &mut self.files[file.0 as usize];
        f.push(phys);
        (f.len() - 1) as PageId
    }

    fn phys(&self, file: FileId, page: PageId) -> PhysPage {
        let f = self.file_pages(file);
        *f.get(page as usize).unwrap_or_else(|| {
            panic!(
                "page {page} out of bounds for {file:?} ({} page(s) allocated)",
                f.len()
            )
        })
    }

    fn read_phys(&mut self, phys: PhysPage, out: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        let expected = *self.checksums.get(phys as usize).unwrap_or_else(|| {
            panic!(
                "physical page {phys} out of bounds ({} page(s) allocated)",
                self.checksums.len()
            )
        });
        self.read_at(Self::page_offset(phys), &mut out[..])?;
        let actual = fnv1a(&out[..]);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch {
                what: format!("page {phys}"),
                expected,
                actual,
            });
        }
        Ok(())
    }

    fn write_phys(&mut self, phys: PhysPage, data: &[u8]) -> Result<(), StorageError> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let total = self.checksums.len();
        let slot = self.checksums.get_mut(phys as usize).unwrap_or_else(|| {
            panic!("physical page {phys} out of bounds ({total} page(s) allocated)")
        });
        *slot = fnv1a(data);
        self.seek_write(Self::page_offset(phys), data)?;
        Ok(())
    }

    fn put_catalog(&mut self, key: &str, bytes: &[u8]) {
        self.catalog.insert(key.to_string(), bytes.to_vec());
    }

    fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
        self.catalog.get(key).cloned()
    }

    fn catalog_keys(&self) -> Vec<String> {
        self.catalog.keys().cloned().collect()
    }

    /// Write the trailer and superblock, then `sync_all`. The caller (the
    /// buffer pool's [`sync`](crate::BufferPool::sync)) has already flushed
    /// every dirty page through [`FileStorage::write_phys`].
    fn sync(&mut self) -> Result<(), StorageError> {
        let trailer = self.trailer_bytes();
        let trailer_off = Self::page_offset(self.checksums.len() as PhysPage);
        self.seek_write(trailer_off, &trailer)?;
        // Drop any longer stale trailer from a previous sync so the file
        // ends exactly at the live data.
        self.file.set_len(trailer_off + trailer.len() as u64)?;
        let sb = self.superblock_bytes(trailer_off, &trailer);
        self.seek_write(0, &sb)?;
        self.file.sync_all()?;
        Ok(())
    }
}

impl FileStorage {
    /// Positioned write through [`write_all_at`].
    fn seek_write(&mut self, offset: u64, data: &[u8]) -> std::io::Result<()> {
        write_all_at(&mut self.file, offset, data)
    }

    /// Positioned read through [`read_exact_at`].
    fn read_at(&mut self, offset: u64, out: &mut [u8]) -> std::io::Result<()> {
        read_exact_at(&mut self.file, offset, out)
    }

    /// The physical-page list of `file`, with a legible panic on an
    /// out-of-range id (mirrors [`MemStorage`](crate::MemStorage)).
    fn file_pages(&self, file: FileId) -> &Vec<PhysPage> {
        let count = self.files.len();
        self.files.get(file.0 as usize).unwrap_or_else(|| {
            panic!("unknown {file:?}: storage has {count} file(s) — FileId from another pager?")
        })
    }
}

impl std::fmt::Debug for FileStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStorage")
            .field("path", &self.path)
            .field("files", &self.files.len())
            .field("pages", &self.checksums.len())
            .field("catalog_keys", &self.catalog.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pagestore-{tag}-{}.oif", std::process::id()));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn pages_and_catalog_survive_reopen() {
        let path = temp_path("roundtrip");
        let _c = Cleanup(path.clone());
        let (f, phys) = {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            let p0 = s.allocate_page(f);
            let p1 = s.allocate_page(f);
            assert_eq!((p0, p1), (0, 1));
            let mut page = [0u8; PAGE_SIZE];
            page[7] = 77;
            let phys = s.phys(f, 1);
            s.write_phys(phys, &page).unwrap();
            s.put_catalog("k", b"v");
            s.sync().unwrap();
            (f, phys)
        };
        let mut s = FileStorage::open(&path).unwrap();
        assert_eq!(s.file_count(), 1);
        assert_eq!(s.file_len(f), 2);
        assert_eq!(s.total_pages(), 2);
        assert_eq!(s.phys(f, 1), phys);
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(phys, &mut out).unwrap();
        assert_eq!(out[7], 77);
        // Page 0 was never written: reads back as zeros, checksum valid.
        s.read_phys(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(s.get_catalog("k").as_deref(), Some(&b"v"[..]));
        assert_eq!(s.get_catalog("missing"), None);
    }

    #[test]
    fn created_file_opens_empty_without_explicit_sync() {
        let path = temp_path("fresh");
        let _c = Cleanup(path.clone());
        drop(FileStorage::create(&path).unwrap());
        let s = FileStorage::open(&path).unwrap();
        assert_eq!(s.file_count(), 0);
        assert_eq!(s.total_pages(), 0);
    }

    #[test]
    fn flipped_page_byte_is_a_checksum_error() {
        let path = temp_path("corrupt-page");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.write_phys(0, &[5u8; PAGE_SIZE]).unwrap();
            s.sync().unwrap();
        }
        // Flip one byte inside page 0's region.
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 100)).unwrap();
            f.write_all(&[6u8]).unwrap();
        }
        let mut s = FileStorage::open(&path).unwrap(); // metadata intact
        let mut out = [0u8; PAGE_SIZE];
        let err = s.read_phys(0, &mut out).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum mismatch on page 0"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn flipped_trailer_byte_fails_open() {
        let path = temp_path("corrupt-trailer");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.sync().unwrap();
        }
        let end = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(end - 1)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(end - 1)).unwrap();
            f.write_all(&[b[0] ^ 0xFF]).unwrap();
        }
        let err = FileStorage::open(&path).unwrap_err();
        assert!(err.to_string().contains("trailer"), "got: {err}");
    }

    #[test]
    fn non_storage_file_is_rejected() {
        let path = temp_path("not-ours");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, b"definitely not a storage file, far too short").unwrap();
        let err = FileStorage::open(&path).unwrap_err();
        assert!(matches!(err, StorageError::BadSuperblock(_)), "got: {err}");
    }

    #[test]
    fn page_allocated_over_old_trailer_reads_back_zeroed() {
        // After a sync the trailer sits right after the page region; the
        // next allocate_page claims that byte range for page data. The
        // stale trailer bytes must be zeroed, or reading the fresh page
        // before its first write would fail its (zero-page) checksum.
        let path = temp_path("alloc-over-trailer");
        let _c = Cleanup(path.clone());
        let mut s = FileStorage::create(&path).unwrap();
        let f = s.create_file();
        s.allocate_page(f);
        s.write_phys(0, &[1u8; PAGE_SIZE]).unwrap();
        s.sync().unwrap(); // trailer now occupies page 1's future region
        s.allocate_page(f);
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(1, &mut out)
            .expect("fresh page must be readable");
        assert!(out.iter().all(|&b| b == 0), "fresh page must read as zeros");
    }

    #[test]
    fn resync_after_growth_relocates_trailer() {
        let path = temp_path("regrow");
        let _c = Cleanup(path.clone());
        {
            let mut s = FileStorage::create(&path).unwrap();
            let f = s.create_file();
            s.allocate_page(f);
            s.sync().unwrap();
            // Growing after a sync writes pages over the old trailer
            // location; the next sync must rebuild everything.
            s.allocate_page(f);
            s.write_phys(1, &[9u8; PAGE_SIZE]).unwrap();
            s.put_catalog("after", b"growth");
            s.sync().unwrap();
        }
        let mut s = FileStorage::open(&path).unwrap();
        assert_eq!(s.total_pages(), 2);
        let mut out = [0u8; PAGE_SIZE];
        s.read_phys(1, &mut out).unwrap();
        assert_eq!(out[0], 9);
        assert_eq!(s.get_catalog("after").as_deref(), Some(&b"growth"[..]));
    }
}
