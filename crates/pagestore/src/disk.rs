//! The simulated disk: an append-only collection of fixed-size pages grouped
//! into logical files.
//!
//! Pages of one file are physically contiguous *in allocation order*, which
//! is the paper's assumption for inverted lists ("inverted lists are placed
//! in contiguous regions in the disk" §2). The buffer pool uses the global
//! physical page number to tell sequential from random fetches.

/// Size of a disk page in bytes. 4 KiB matches the Berkeley DB default the
/// paper's implementation used.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a logical file (segment) on the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Page number *within* a file (0-based).
pub type PageId = u64;

/// Physical page number on the whole disk, used for sequentiality tracking.
pub(crate) type PhysPage = u64;

struct File {
    /// Physical page number of each page of the file, in file order.
    pages: Vec<PhysPage>,
}

/// An in-memory simulated disk.
///
/// The disk only supports appending pages to files and reading/writing whole
/// pages — the same primitives a real database file layer builds on. All
/// richer behaviour (caching, cost accounting) lives in the
/// [`BufferPool`](crate::BufferPool).
pub struct Disk {
    files: Vec<File>,
    /// Backing store: one `PAGE_SIZE` chunk per physical page.
    data: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl Disk {
    /// Create an empty disk.
    pub fn new() -> Self {
        Disk {
            files: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Create a new empty file and return its id.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File { pages: Vec::new() });
        id
    }

    /// Number of files on the disk.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of pages in `file`.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.files[file.0 as usize].pages.len() as u64
    }

    /// Total pages allocated across all files.
    pub fn total_pages(&self) -> u64 {
        self.data.len() as u64
    }

    /// Append a zeroed page to `file`; returns its page id within the file.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let phys = self.data.len() as PhysPage;
        self.data.push(Box::new([0u8; PAGE_SIZE]));
        let f = &mut self.files[file.0 as usize];
        f.pages.push(phys);
        (f.pages.len() - 1) as PageId
    }

    pub(crate) fn phys(&self, file: FileId, page: PageId) -> PhysPage {
        self.files[file.0 as usize].pages[page as usize]
    }

    pub(crate) fn read_phys(&self, phys: PhysPage) -> &[u8; PAGE_SIZE] {
        &self.data[phys as usize]
    }

    pub(crate) fn write_phys(&mut self, phys: PhysPage, data: &[u8]) {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        self.data[phys as usize].copy_from_slice(data);
    }
}

impl Default for Disk {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_are_physically_contiguous_when_allocated_in_a_run() {
        let mut d = Disk::new();
        let f = d.create_file();
        for _ in 0..8 {
            d.allocate_page(f);
        }
        let phys: Vec<_> = (0..8).map(|p| d.phys(f, p)).collect();
        for w in phys.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn interleaved_allocation_interleaves_physical_pages() {
        let mut d = Disk::new();
        let a = d.create_file();
        let b = d.create_file();
        d.allocate_page(a);
        d.allocate_page(b);
        d.allocate_page(a);
        assert_eq!(d.phys(a, 0), 0);
        assert_eq!(d.phys(b, 0), 1);
        assert_eq!(d.phys(a, 1), 2);
        assert_eq!(d.file_len(a), 2);
        assert_eq!(d.file_len(b), 1);
    }

    #[test]
    fn page_data_round_trips() {
        let mut d = Disk::new();
        let f = d.create_file();
        d.allocate_page(f);
        let mut page = [0u8; PAGE_SIZE];
        page[123] = 7;
        let phys = d.phys(f, 0);
        d.write_phys(phys, &page);
        assert_eq!(d.read_phys(phys)[123], 7);
    }
}
