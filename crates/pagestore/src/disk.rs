//! The in-memory storage backend: an append-only collection of fixed-size
//! pages grouped into logical files.
//!
//! Pages of one file are physically contiguous *in allocation order*, which
//! is the paper's assumption for inverted lists ("inverted lists are placed
//! in contiguous regions in the disk" §2). The buffer pool uses the global
//! physical page number to tell sequential from random fetches.

use crate::storage::{PhysPage, Storage, StorageError};
use std::collections::HashMap;

/// Size of a disk page in bytes. 4 KiB matches the Berkeley DB default the
/// paper's implementation used.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a logical file (segment) on the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Page number *within* a file (0-based).
pub type PageId = u64;

struct File {
    /// Physical page number of each page of the file, in file order.
    pages: Vec<PhysPage>,
}

/// The in-memory simulated disk — the default [`Storage`] backend.
///
/// The store only supports appending pages to files and reading/writing
/// whole pages — the same primitives a real database file layer builds on.
/// All richer behaviour (caching, cost accounting) lives in the
/// [`BufferPool`](crate::BufferPool). Catalog blobs are kept in a plain
/// map and [`Storage::sync`] is a no-op: nothing survives the process, by
/// design — this backend exists for deterministic measurements, not
/// durability (see [`FileStorage`](crate::FileStorage) for that).
pub struct MemStorage {
    files: Vec<File>,
    /// Backing store: one `PAGE_SIZE` chunk per physical page.
    data: Vec<Box<[u8; PAGE_SIZE]>>,
    catalog: HashMap<String, Vec<u8>>,
}

/// Historical name of [`MemStorage`], kept so existing call sites and docs
/// keep reading naturally ("the simulated disk").
pub type Disk = MemStorage;

impl MemStorage {
    /// Create an empty in-memory store.
    pub fn new() -> Self {
        MemStorage {
            files: Vec::new(),
            data: Vec::new(),
            catalog: HashMap::new(),
        }
    }

    /// The `File` entry of `file`, with a legible panic on an out-of-range
    /// id (a backend bug — e.g. a `FileId` from a different pager — should
    /// surface with a name, not as a raw index panic).
    fn file(&self, file: FileId) -> &File {
        let count = self.files.len();
        self.files.get(file.0 as usize).unwrap_or_else(|| {
            panic!("unknown {file:?}: storage has {count} file(s) — FileId from another pager?")
        })
    }
}

impl Storage for MemStorage {
    fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File { pages: Vec::new() });
        id
    }

    fn file_count(&self) -> usize {
        self.files.len()
    }

    fn file_len(&self, file: FileId) -> u64 {
        self.file(file).pages.len() as u64
    }

    fn total_pages(&self) -> u64 {
        self.data.len() as u64
    }

    fn allocate_page(&mut self, file: FileId) -> PageId {
        self.file(file); // named bounds check before the mutable borrow
        let phys = self.data.len() as PhysPage;
        self.data.push(Box::new([0u8; PAGE_SIZE]));
        let f = &mut self.files[file.0 as usize];
        f.pages.push(phys);
        (f.pages.len() - 1) as PageId
    }

    fn phys(&self, file: FileId, page: PageId) -> PhysPage {
        let f = self.file(file);
        *f.pages.get(page as usize).unwrap_or_else(|| {
            panic!(
                "page {page} out of bounds for {file:?} ({} page(s) allocated)",
                f.pages.len()
            )
        })
    }

    fn read_phys(&mut self, phys: PhysPage, out: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        let total = self.data.len();
        let page = self.data.get(phys as usize).unwrap_or_else(|| {
            panic!("physical page {phys} out of bounds ({total} page(s) allocated)")
        });
        out.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_phys(&mut self, phys: PhysPage, data: &[u8]) -> Result<(), StorageError> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let total = self.data.len();
        let page = self.data.get_mut(phys as usize).unwrap_or_else(|| {
            panic!("physical page {phys} out of bounds ({total} page(s) allocated)")
        });
        page.copy_from_slice(data);
        Ok(())
    }

    fn put_catalog(&mut self, key: &str, bytes: &[u8]) {
        self.catalog.insert(key.to_string(), bytes.to_vec());
    }

    fn get_catalog(&self, key: &str) -> Option<Vec<u8>> {
        self.catalog.get(key).cloned()
    }

    fn catalog_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.catalog.keys().cloned().collect();
        keys.sort();
        keys
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_are_physically_contiguous_when_allocated_in_a_run() {
        let mut d = MemStorage::new();
        let f = d.create_file();
        for _ in 0..8 {
            d.allocate_page(f);
        }
        let phys: Vec<_> = (0..8).map(|p| d.phys(f, p)).collect();
        for w in phys.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn interleaved_allocation_interleaves_physical_pages() {
        let mut d = MemStorage::new();
        let a = d.create_file();
        let b = d.create_file();
        d.allocate_page(a);
        d.allocate_page(b);
        d.allocate_page(a);
        assert_eq!(d.phys(a, 0), 0);
        assert_eq!(d.phys(b, 0), 1);
        assert_eq!(d.phys(a, 1), 2);
        assert_eq!(d.file_len(a), 2);
        assert_eq!(d.file_len(b), 1);
    }

    #[test]
    fn page_data_round_trips() {
        let mut d = MemStorage::new();
        let f = d.create_file();
        d.allocate_page(f);
        let mut page = [0u8; PAGE_SIZE];
        page[123] = 7;
        let phys = d.phys(f, 0);
        d.write_phys(phys, &page).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        d.read_phys(phys, &mut out).unwrap();
        assert_eq!(out[123], 7);
    }

    #[test]
    fn catalog_round_trips() {
        let mut d = MemStorage::new();
        assert_eq!(d.get_catalog("oif"), None);
        d.put_catalog("oif", b"state");
        d.put_catalog("aux", b"x");
        assert_eq!(d.get_catalog("oif").as_deref(), Some(&b"state"[..]));
        assert_eq!(d.catalog_keys(), vec!["aux".to_string(), "oif".to_string()]);
        d.put_catalog("oif", b"replaced");
        assert_eq!(d.get_catalog("oif").as_deref(), Some(&b"replaced"[..]));
        d.sync().unwrap(); // no-op, must not fail
    }

    #[test]
    #[should_panic(expected = "unknown FileId(3)")]
    fn unknown_file_panics_with_name() {
        let d = MemStorage::new();
        d.file_len(FileId(3));
    }

    #[test]
    #[should_panic(expected = "page 5 out of bounds for FileId(0)")]
    fn out_of_bounds_page_panics_with_name() {
        let mut d = MemStorage::new();
        let f = d.create_file();
        d.allocate_page(f);
        d.phys(f, 5);
    }

    #[test]
    #[should_panic(expected = "physical page 9 out of bounds")]
    fn out_of_bounds_phys_read_panics_with_name() {
        let mut d = MemStorage::new();
        let mut buf = [0u8; PAGE_SIZE];
        let _ = d.read_phys(9, &mut buf);
    }
}
