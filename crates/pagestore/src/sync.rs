//! The crate's synchronization layer, switched at compile time.
//!
//! Production builds (the default) use `parking_lot` locks and `std`
//! atomics — zero-cost, exactly what the code always used. Under the
//! test-only `model` cargo feature the same names resolve to the `loom`
//! model-checker shims, which turn every lock acquisition, atomic
//! operation and condvar wait into a deterministic schedule point so
//! `loom::model` can enumerate interleavings of the pool's latch
//! protocols (see `tests/model.rs`).
//!
//! Everything concurrency-relevant in this crate — frame pin latches,
//! shard mapping tables, the policy mutex, touch logs — must import its
//! primitives from here, never from `parking_lot`/`std::sync` directly.

#[cfg(feature = "model")]
pub(crate) use loom::sync::{Condvar, Mutex, RwLock};

#[cfg(not(feature = "model"))]
pub(crate) use parking_lot::{Condvar, Mutex, RwLock};

pub(crate) mod atomic {
    #[cfg(feature = "model")]
    pub(crate) use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};

    #[cfg(not(feature = "model"))]
    pub(crate) use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
}
