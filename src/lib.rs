//! Umbrella crate for the OIF set-containment suite.
//!
//! This crate re-exports the public API of every crate in the workspace so
//! that downstream users (and the `examples/` and `tests/` at the repository
//! root) can depend on a single package.
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the full
//! system inventory of this EDBT 2011 reproduction.

pub use btree;
pub use codec;
pub use datagen;
pub use heapfile;
pub use invfile;
pub use oif;
pub use pagestore;
pub use service;
pub use ubtree;
